package synth

import (
	"fmt"
	"math"
	"math/rand"

	"tahoma/internal/img"
)

// Frame is one labeled video frame.
type Frame struct {
	Image *img.Image
	Label bool // true when the target object is visible in this frame
}

// StreamOptions controls synthetic video generation. The two presets —
// ReefStream and JunctionStream — are the analogues of NoScope's coral and
// jackson datasets: a mostly-static scene with rare targets versus a busy
// scene with frequent targets and motion.
type StreamOptions struct {
	Size            int   // frame side in pixels
	Frames          int   // number of frames to generate
	Seed            int64 // master seed
	Target          Category
	Distractors     []Category
	TargetEnterProb float64 // per-frame probability an absent target enters
	TargetLeaveProb float64 // per-frame probability a present target leaves
	NumDistractors  int     // moving distractor objects in the scene
	Speed           float32 // object speed in pixels/frame
	Noise           float32 // per-frame sensor noise amplitude
}

// ReefStream returns the low-motion, rare-target preset ("coral" analogue):
// nearly static frames, so a difference detector can reuse most results.
func ReefStream(size, frames int, seed int64) StreamOptions {
	cats := Categories()
	return StreamOptions{
		Size:            size,
		Frames:          frames,
		Seed:            seed,
		Target:          cats[3], // coho — a fish over the reef
		Distractors:     []Category{cats[1]},
		TargetEnterProb: 0.01,
		TargetLeaveProb: 0.05,
		NumDistractors:  1,
		Speed:           0.15,
		Noise:           0.015,
	}
}

// JunctionStream returns the busy-intersection preset ("jackson" analogue):
// several fast-moving objects and frequent targets, defeating result reuse.
func JunctionStream(size, frames int, seed int64) StreamOptions {
	cats := Categories()
	return StreamOptions{
		Size:            size,
		Frames:          frames,
		Seed:            seed,
		Target:          cats[9], // wallet — stands in for the tracked vehicle class
		Distractors:     []Category{cats[2], cats[5], cats[8]},
		TargetEnterProb: 0.10,
		TargetLeaveProb: 0.08,
		NumDistractors:  3,
		Speed:           2.0,
		Noise:           0.03,
	}
}

type sprite struct {
	cat    Category
	x, y   float32
	vx, vy float32
	scale  float32
	seed   int64
}

// GenerateStream renders a labeled frame sequence with temporal coherence:
// the scene's background is fixed, objects move smoothly, and the target
// enters/leaves according to a two-state Markov chain.
func GenerateStream(opts StreamOptions) ([]Frame, error) {
	if opts.Size < 8 || opts.Frames <= 0 {
		return nil, fmt.Errorf("synth: invalid stream geometry size=%d frames=%d", opts.Size, opts.Frames)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	size := float32(opts.Size)

	newSprite := func(cat Category) sprite {
		ang := rng.Float64() * 2 * math.Pi
		speed := opts.Speed * (0.5 + rng.Float32())
		return sprite{
			cat:   cat,
			x:     size * (0.2 + 0.6*rng.Float32()),
			y:     size * (0.2 + 0.6*rng.Float32()),
			vx:    speed * float32(math.Cos(ang)),
			vy:    speed * float32(math.Sin(ang)),
			scale: size * (0.18 + 0.1*rng.Float32()),
			seed:  rng.Int63(),
		}
	}

	distractors := make([]sprite, opts.NumDistractors)
	for i := range distractors {
		distractors[i] = newSprite(opts.Distractors[i%max(1, len(opts.Distractors))])
	}
	var target sprite
	targetPresent := false

	// Render the static background once; per-frame we copy and overlay.
	bg := newCanvas(opts.Size)
	bg.fillBackground(rng, opts.Noise)

	step := func(s *sprite) {
		s.x += s.vx
		s.y += s.vy
		if s.x < s.scale || s.x > size-s.scale {
			s.vx = -s.vx
			s.x += 2 * s.vx
		}
		if s.y < s.scale || s.y > size-s.scale {
			s.vy = -s.vy
			s.y += 2 * s.vy
		}
	}

	frames := make([]Frame, 0, opts.Frames)
	for f := 0; f < opts.Frames; f++ {
		if targetPresent {
			if rng.Float64() < opts.TargetLeaveProb {
				targetPresent = false
			}
		} else if rng.Float64() < opts.TargetEnterProb {
			target = newSprite(opts.Target)
			targetPresent = true
		}
		cv := &canvas{im: bg.im.Clone(), w: opts.Size, h: opts.Size}
		for i := range distractors {
			step(&distractors[i])
			// Seeded per-sprite rng keeps textured categories stable
			// between frames instead of shimmering.
			srng := rand.New(rand.NewSource(distractors[i].seed))
			distractors[i].cat.draw(srng, cv, distractors[i].x, distractors[i].y, distractors[i].scale)
		}
		if targetPresent {
			step(&target)
			srng := rand.New(rand.NewSource(target.seed))
			target.cat.draw(srng, cv, target.x, target.y, target.scale)
		}
		cv.addNoise(rng, opts.Noise)
		frames = append(frames, Frame{Image: cv.im.Clamp(), Label: targetPresent})
	}
	return frames, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
