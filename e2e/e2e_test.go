package e2e

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// sharedFx is the one trained fixture every test in the package shares —
// training is the expensive step, and the artifacts are read-only (servers
// get private store copies).
var sharedFx struct {
	once sync.Once
	dir  string
	fx   *Fixture
	err  error
}

func sharedFixture(t *testing.T) *Fixture {
	t.Helper()
	sharedFx.once.Do(func() {
		sharedFx.dir, sharedFx.err = os.MkdirTemp("", "tahoma-e2e-fx")
		if sharedFx.err != nil {
			return
		}
		sharedFx.fx, sharedFx.err = BuildFixture(sharedFx.dir)
	})
	if sharedFx.err != nil {
		t.Fatalf("building fixture: %v", sharedFx.err)
	}
	return sharedFx.fx
}

func TestMain(m *testing.M) {
	code := m.Run()
	if sharedFx.dir != "" {
		os.RemoveAll(sharedFx.dir)
	}
	os.Exit(code)
}

// loadCommittedTrace reads a mix's committed trace file — the replay's
// source of truth (TestTracesCommitted keeps the generator and the files in
// sync).
func loadCommittedTrace(t *testing.T, mix string) *Trace {
	t.Helper()
	tr, err := LoadTrace(filepath.Join("testdata", "traces", mix+".json"))
	if err != nil {
		t.Fatalf("%v (run `go test ./e2e -run TestTracesCommitted -update` to regenerate)", err)
	}
	return tr
}

// TestScenarioMixes is the traffic-mix matrix: every committed trace is
// replayed concurrently against live `tahoma serve` subprocesses and
// byte-compared, op for op, against the serial in-process reference replay —
// then held to its p99 budget from the server's own /stats histogram.
//
// In -short mode only the Short-marked mixes run, on a single process. The
// full run replays every mix and gives query-only mixes a two-process
// cluster, so round-robined traffic must agree across processes too.
func TestScenarioMixes(t *testing.T) {
	fx := sharedFixture(t)
	for _, mix := range []string{"burst", "scan", "ingest_query", "repeat", "faults", "quant"} {
		tr := loadCommittedTrace(t, mix)
		if testing.Short() && !tr.Short {
			continue
		}
		t.Run(mix, func(t *testing.T) {
			procs := 1
			if !testing.Short() && tr.QueryOnly() {
				procs = 2
			}
			cl := StartCluster(t, fx, procs, ServerOptions{
				Fault:       tr.Fault,
				ServeReps:   tr.ServeReps,
				Quantize:    tr.Quantize,
				Materialize: tr.Materialize,
			})

			ref, err := NewReference(fx, false)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			want, err := ref.Replay(tr)
			if err != nil {
				t.Fatalf("reference replay: %v", err)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			rep, err := Replay(ctx, cl.Clients(), tr, fx)
			if err != nil {
				WriteFailureArtifacts(t, mix, tr, rep, want, cl)
				t.Fatalf("replay: %v", err)
			}

			mismatches := 0
			for i, r := range rep.Results {
				if !bytes.Equal(r.Canon, want[i]) {
					mismatches++
					if mismatches <= 3 {
						t.Errorf("op %d (%s) diverged from reference\n got: %s\nwant: %s",
							i, describeOp(tr.Ops[i]), r.Canon, want[i])
					}
				}
			}
			if mismatches > 0 {
				WriteFailureArtifacts(t, mix, tr, rep, want, cl)
				t.Fatalf("%d/%d ops diverged from the serial reference", mismatches, len(tr.Ops))
			}

			if tr.ExpectBitmap && rep.Bitmap == 0 {
				t.Errorf("expected at least one bitmap-served response; got none (materialization never engaged)")
			}
			if tr.ExpectRepFallbacks && rep.RepFallbacks == 0 {
				t.Errorf("expected rep-read fallbacks under fault %q; got none (fault never fired)", tr.Fault)
			}
			if tr.ExpectQuantScored && rep.QuantScored == 0 {
				t.Errorf("expected trusted int8 scores on the quantized mix; got none (int8 path never engaged)")
			}

			stats, err := cl.Stats()
			if err != nil {
				t.Fatalf("%v", err)
			}
			for p, st := range stats {
				if st.Errors != 0 || st.Panics != 0 || st.Rejected != 0 {
					t.Errorf("proc %d: errors=%d panics=%d rejected=%d, want all zero",
						p, st.Errors, st.Panics, st.Rejected)
				}
				if p99 := HistogramP99(st.Latency); p99 > tr.SLOP99MS {
					t.Errorf("proc %d: /stats p99 %.0fms exceeds the %s mix budget %.0fms",
						p, p99, mix, tr.SLOP99MS)
				}
			}
			if t.Failed() {
				WriteFailureArtifacts(t, mix, tr, rep, want, cl)
			}
			t.Logf("%s: %d ops, %d proc(s), qps=%.1f client p50=%.1fms p99=%.1fms bitmap=%d fallbacks=%d int8=%d/%d",
				mix, len(tr.Ops), procs, rep.QPS, rep.ClientP50MS, rep.ClientP99MS, rep.Bitmap, rep.RepFallbacks,
				rep.QuantScored, rep.QuantFallbacks)
		})
	}
}

func describeOp(op Op) string {
	if op.Kind == "ingest" {
		return fmt.Sprintf("ingest %v", op.IDs)
	}
	return op.SQL
}
