package e2e

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"tahoma/internal/server"
)

// fleetBaseID keeps fleet frame IDs disjoint from both the fixture corpus
// (ts < FixtureRows) and the ingest mixes (ingestBaseID); `ts >= 10000` pins
// a query to fleet rows only.
const fleetBaseID = 10000

const fleetStandingSQL = "SELECT id FROM images WHERE ts >= 10000 AND contains_object('cloak')"

// TestCameraFleet is the paper's motivating deployment, live: N concurrent
// camera streams append frames through the ingest/trigger path of one real
// `tahoma serve` process (durable, background analyzer on) while standing
// queries consume NDJSON streaming responses. It asserts that
//
//   - every acknowledged frame is queryable once the streams drain,
//   - trigger-computed labels are bit-identical to an offline reference
//     replay of the same frames,
//   - each standing query's view only ever grows (the corpus is
//     append-only and labels are deterministic), and never shows a frame
//     the reference rejects,
//   - the process stays healthy under the load: zero errors / panics /
//     shed requests, checkpointer keeping up, p99 within budget,
//   - teardown is clean — graceful exit 0 and zero leaked goroutines
//     (leakcheck wraps the whole cluster).
func TestCameraFleet(t *testing.T) {
	fx := sharedFixture(t)
	streams, frames := 8, 10
	if testing.Short() {
		streams, frames = 4, 5
	}

	cl := StartCluster(t, fx, 1, ServerOptions{
		Trigger:         true,
		Durable:         true,
		CheckpointEvery: 2 * time.Second,
		Materialize:     "bg",
		MaxQueue:        256,
	})
	c := cl.Clients()[0]
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// The offline reference: the same frames through the same trigger path,
	// serially. Labels depend only on the frame, so append order across
	// streams cannot change the positive set.
	ref, err := NewReference(fx, true)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	var allIDs []int64
	for s := 0; s < streams; s++ {
		for f := 0; f < frames; f++ {
			allIDs = append(allIDs, fleetFrameID(s, f))
		}
	}
	sort.Slice(allIDs, func(i, j int) bool { return allIDs[i] < allIDs[j] })
	srcs := make([]int, len(allIDs))
	for i, id := range allIDs {
		srcs[i] = fleetFrameSrc(id, fx.Rows)
	}
	if _, err := ref.Append(allIDs, srcs, "fleet", "cam-fleet"); err != nil {
		t.Fatalf("reference append: %v", err)
	}
	refPositive, err := queryIDSet(ref, fleetStandingSQL)
	if err != nil {
		t.Fatalf("reference query: %v", err)
	}

	// Standing queries: consumers poll the NDJSON stream while the fleet
	// ingests, checking monotonicity and containment on every poll.
	stop := make(chan struct{})
	var consumers sync.WaitGroup
	var consErrMu sync.Mutex
	var consErrs []string
	consumerFail := func(format string, args ...any) {
		consErrMu.Lock()
		consErrs = append(consErrs, fmt.Sprintf(format, args...))
		consErrMu.Unlock()
	}
	for g := 0; g < 2; g++ {
		consumers.Add(1)
		go func(g int) {
			defer consumers.Done()
			prev := map[int64]bool{}
			for polls := 0; ; polls++ {
				ids, err := streamIDSet(ctx, c, fleetStandingSQL)
				if err != nil {
					consumerFail("consumer %d poll %d: %v", g, polls, err)
					return
				}
				for id := range prev {
					if !ids[id] {
						consumerFail("consumer %d poll %d: frame %d vanished from the standing view", g, polls, id)
						return
					}
				}
				for id := range ids {
					if !refPositive[id] {
						consumerFail("consumer %d poll %d: frame %d visible but the reference rejects it", g, polls, id)
						return
					}
				}
				prev = ids
				select {
				case <-stop:
					return
				case <-time.After(50 * time.Millisecond):
				}
			}
		}(g)
	}

	// The fleet: one goroutine per camera, appending frames one at a time
	// through POST /ingest (the trigger classifies each at append time).
	var fleet sync.WaitGroup
	var fleetErrMu sync.Mutex
	var fleetErrs []string
	acked := make([]int64, 0, streams*frames)
	var ackedMu sync.Mutex
	for s := 0; s < streams; s++ {
		fleet.Add(1)
		go func(s int) {
			defer fleet.Done()
			for f := 0; f < frames; f++ {
				id := fleetFrameID(s, f)
				row := server.IngestRow{
					ID: id, TS: id, Location: "fleet", Camera: fmt.Sprintf("cam-fleet-%d", s),
					Image: fx.Encoded[fleetFrameSrc(id, fx.Rows)],
				}
				resp, err := c.IngestCtx(ctx, []server.IngestRow{row})
				if err != nil {
					fleetErrMu.Lock()
					fleetErrs = append(fleetErrs, fmt.Sprintf("stream %d frame %d: %v", s, f, err))
					fleetErrMu.Unlock()
					return
				}
				if resp.Rows != 1 {
					fleetErrMu.Lock()
					fleetErrs = append(fleetErrs, fmt.Sprintf("stream %d frame %d: acked %d rows", s, f, resp.Rows))
					fleetErrMu.Unlock()
					return
				}
				ackedMu.Lock()
				acked = append(acked, id)
				ackedMu.Unlock()
			}
		}(s)
	}
	fleet.Wait()
	close(stop)
	consumers.Wait()
	for _, e := range fleetErrs {
		t.Errorf("%s", e)
	}
	for _, e := range consErrs {
		t.Errorf("%s", e)
	}
	if t.Failed() {
		t.FailNow()
	}
	if len(acked) != streams*frames {
		t.Fatalf("acked %d frames, want %d", len(acked), streams*frames)
	}

	// Every acknowledged frame is queryable.
	visible, err := streamIDSet(ctx, c, "SELECT id FROM images WHERE ts >= 10000")
	if err != nil {
		t.Fatalf("%v", err)
	}
	for _, id := range acked {
		if !visible[id] {
			t.Errorf("acked frame %d is not queryable", id)
		}
	}
	if len(visible) != len(acked) {
		t.Errorf("fleet rows visible: %d, want %d", len(visible), len(acked))
	}

	// Trigger labels match the offline reference, exactly.
	livePositive, err := streamIDSet(ctx, c, fleetStandingSQL)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if err := sameIDSet(livePositive, refPositive); err != nil {
		t.Errorf("trigger labels diverge from the offline reference: %v", err)
	}
	if len(refPositive) == 0 || len(refPositive) == len(allIDs) {
		t.Errorf("degenerate fleet: %d/%d frames positive — the fixture should mix labels", len(refPositive), len(allIDs))
	}

	// Health: the process absorbed the fleet without shedding or erroring,
	// the checkpointer kept up, and the analyzer is running.
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("%v", err)
	}
	if st.IngestedRows != int64(streams*frames) {
		t.Errorf("stats ingested_rows=%d, want %d", st.IngestedRows, streams*frames)
	}
	if st.Errors != 0 || st.Panics != 0 || st.Rejected != 0 {
		t.Errorf("errors=%d panics=%d rejected=%d, want all zero", st.Errors, st.Panics, st.Rejected)
	}
	if !st.Durability.Enabled {
		t.Errorf("durability not enabled")
	}
	if st.Durability.CheckpointAgeS > 30 {
		t.Errorf("checkpointer fell behind: last checkpoint %.1fs ago", st.Durability.CheckpointAgeS)
	}
	if st.Materialization.Mode != "bg" {
		t.Errorf("materialization mode %q, want bg", st.Materialization.Mode)
	}
	const fleetSLOP99MS = 4000
	if p99 := HistogramP99(st.Latency); p99 > fleetSLOP99MS {
		t.Errorf("/stats p99 %.0fms exceeds the fleet budget %dms", p99, fleetSLOP99MS)
	}
	t.Logf("fleet: %d streams x %d frames, %d positive, queries=%d udf_calls=%d",
		streams, frames, len(refPositive), st.Queries, st.UDFCalls)
}

func fleetFrameID(stream, frame int) int64 {
	return fleetBaseID + int64(stream)*100 + int64(frame)
}

// fleetFrameSrc picks the fixture source image for a frame — a fixed mix of
// positives and negatives spread across streams.
func fleetFrameSrc(id int64, rows int) int {
	return int(id*13) % rows
}

// streamIDSet consumes a one-column NDJSON streaming response into an ID set.
func streamIDSet(ctx context.Context, c *server.Client, sql string) (map[int64]bool, error) {
	ids := map[int64]bool{}
	_, err := c.QueryRowsCtx(ctx, sql, server.QueryOptions{}, func(row []any) error {
		if len(row) != 1 {
			return fmt.Errorf("want 1 column, got %d", len(row))
		}
		n, ok := row[0].(json.Number)
		if !ok {
			return fmt.Errorf("want a numeric id, got %T", row[0])
		}
		id, err := n.Int64()
		if err != nil {
			return err
		}
		ids[id] = true
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", sql, err)
	}
	return ids, nil
}

// queryIDSet runs a one-column query on the in-process reference.
func queryIDSet(r *Reference, sql string) (map[int64]bool, error) {
	res, err := r.DB.Query(sql, referenceConstraints())
	if err != nil {
		return nil, err
	}
	ids := map[int64]bool{}
	for _, row := range res.Rows {
		if len(row) != 1 || row[0].IsString {
			return nil, fmt.Errorf("%s: want one numeric column", sql)
		}
		ids[row[0].Int] = true
	}
	return ids, nil
}

func sameIDSet(got, want map[int64]bool) error {
	var missing, extra []int64
	for id := range want {
		if !got[id] {
			missing = append(missing, id)
		}
	}
	for id := range got {
		if !want[id] {
			extra = append(extra, id)
		}
	}
	if len(missing) > 0 || len(extra) > 0 {
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
		return fmt.Errorf("missing %v, extra %v", missing, extra)
	}
	return nil
}
