package experiments

import (
	"fmt"
	"io"

	"tahoma/internal/img"
	"tahoma/internal/pareto"
	"tahoma/internal/scenario"
	"tahoma/internal/synth"
)

var catsCache []synth.Category

func categoriesCache() []synth.Category {
	if catsCache == nil {
		catsCache = synth.Categories()
	}
	return catsCache
}

// Tab3Cell is one (scenario, loss) cell of Table III.
type Tab3Cell struct {
	Scenario  scenario.Kind
	Loss      float64
	Oblivious float64 // avg throughput when cascades were chosen under INFER_ONLY
	Aware     float64 // avg throughput when chosen under the real scenario
	GainPct   float64
}

// TableIII reproduces the scenario-awareness table: for each deployment
// scenario and each permissible accuracy loss, the throughput obtained when
// the cascade is chosen obliviously (priced by inference alone) versus
// scenario-aware, averaged over predicates.
func (s *Suite) TableIII(w io.Writer) ([]Tab3Cell, error) {
	losses := []float64{0, 0.02, 0.05, 0.10}
	scenarios := []scenario.Kind{scenario.Archive, scenario.Camera, scenario.Ongoing}

	var cells []Tab3Cell
	for _, kind := range scenarios {
		for _, loss := range losses {
			var sumObliv, sumAware float64
			n := 0
			for i := range s.Systems {
				inScenario, err := s.evaluate(i, kind)
				if err != nil {
					return nil, err
				}
				inferOnly, err := s.evaluate(i, scenario.InferOnly)
				if err != nil {
					return nil, err
				}
				// Oblivious: choose on the INFER_ONLY frontier, then pay the
				// real scenario's costs for that same cascade.
				chosen, err := pareto.SelectByAccuracyLoss(inferOnly.frontier, loss)
				if err != nil {
					return nil, err
				}
				obliv := inScenario.results[chosen.Index]

				// Aware: choose directly on the scenario's frontier.
				aware, err := pareto.SelectByAccuracyLoss(inScenario.frontier, loss)
				if err != nil {
					return nil, err
				}
				sumObliv += obliv.Throughput
				sumAware += aware.Throughput
				n++
			}
			cell := Tab3Cell{
				Scenario:  kind,
				Loss:      loss,
				Oblivious: sumObliv / float64(n),
				Aware:     sumAware / float64(n),
			}
			if cell.Oblivious > 0 {
				cell.GainPct = (cell.Aware/cell.Oblivious - 1) * 100
			}
			cells = append(cells, cell)
		}
	}

	fmt.Fprintf(w, "\n== Table III: oblivious vs aware cascade choice ==\n")
	fmt.Fprintf(w, "%-10s %-12s %14s %14s %9s\n", "loss", "scenario", "oblivious", "aware", "gain")
	for _, c := range cells {
		fmt.Fprintf(w, "%-10s %-12s %12.1f/s %12.1f/s %+8.1f%%\n",
			fmt.Sprintf("%.0f%%", c.Loss*100), c.Scenario, c.Oblivious, c.Aware, c.GainPct)
	}
	return cells, nil
}

// Fig10Row is one predicate's ablation row.
type Fig10Row struct {
	Predicate string
	None      float64 // no input transformations (full-size RGB only)
	Color     float64 // color variations only
	Resize    float64 // resolution reductions only
	Full      float64 // the complete transform set
}

// Figure10 ablates the input transformations: cascade sets restricted to
// models whose transforms fall in each subset, compared by ALC-average
// throughput over the Full set's accuracy range (CAMERA pricing).
func (s *Suite) Figure10(w io.Writer) ([]Fig10Row, error) {
	var rows []Fig10Row
	for i, name := range s.Config.Predicates {
		sys := s.Systems[i]
		full, err := s.evaluate(i, scenario.Camera)
		if err != nil {
			return nil, err
		}
		lo, hi := pareto.AccuracyRange(full.points)

		avgFor := func(keep func(size int, rgb bool) bool) (float64, error) {
			var models []int
			for idx, m := range sys.Models {
				if idx == sys.DeepIdx {
					continue
				}
				if keep(m.Xform.Size, m.Xform.Color == img.RGB) {
					models = append(models, idx)
				}
			}
			if len(models) == 0 {
				return 0, fmt.Errorf("experiments: empty ablation subset for %s", name)
			}
			opts := sys.BuildOptions(s.Config.MaxDepth)
			opts.LevelModels = models
			opts.FinalModels = append(append([]int(nil), models...), sys.DeepIdx)
			ev, err := s.evaluateOptions(i, opts, scenario.Camera)
			if err != nil {
				return 0, err
			}
			return pareto.AvgThroughput(ev.frontier, lo, hi), nil
		}

		base := s.Config.BaseSize
		row := Fig10Row{Predicate: name}
		if row.None, err = avgFor(func(size int, rgb bool) bool { return size == base && rgb }); err != nil {
			return nil, err
		}
		if row.Color, err = avgFor(func(size int, rgb bool) bool { return size == base }); err != nil {
			return nil, err
		}
		if row.Resize, err = avgFor(func(size int, rgb bool) bool { return rgb }); err != nil {
			return nil, err
		}
		row.Full = pareto.AvgThroughput(full.frontier, lo, hi)
		rows = append(rows, row)
	}

	fmt.Fprintf(w, "\n== Figure 10: input-transformation ablation (avg throughput, CAMERA) ==\n")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s\n", "predicate", "none", "color", "resize", "full")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10.0f %10.0f %10.0f %10.0f\n", r.Predicate, r.None, r.Color, r.Resize, r.Full)
	}
	return rows, nil
}
