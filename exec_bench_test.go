package tahoma

// BenchmarkExecEngine measures the batched execution engine against the
// sequential per-image classify path on a synthetic corpus. On multi-core
// hardware the worker-parallel sub-benchmarks scale with GOMAXPROCS (the
// per-frame cascade work is embarrassingly parallel); every sizing returns
// bit-identical labels, so the comparison is pure throughput.
//
//	go test -run=NONE -bench=BenchmarkExecEngine -benchtime=1x

import (
	"fmt"
	"math/rand"
	"testing"

	"tahoma/internal/arch"
	"tahoma/internal/cascade"
	"tahoma/internal/exec"
	"tahoma/internal/img"
	"tahoma/internal/model"
	"tahoma/internal/thresh"
	"tahoma/internal/xform"
)

func benchRuntime(b *testing.B) *cascade.Runtime {
	b.Helper()
	xfs := []xform.Transform{
		{Size: 8, Color: img.Gray},
		{Size: 16, Color: img.Gray},
		{Size: 32, Color: img.RGB},
	}
	spec := arch.Spec{ConvLayers: 1, ConvWidth: 4, DenseWidth: 8, Kernel: 3}
	var models []*model.Model
	ths := make([][]thresh.Thresholds, len(xfs))
	for i, t := range xfs {
		m, err := model.New(spec, t, model.Basic, int64(40+i))
		if err != nil {
			b.Fatal(err)
		}
		models = append(models, m)
		// Wide uncertain bands: most frames descend several levels, so the
		// benchmark exercises representation sharing, not just level 1.
		ths[i] = []thresh.Thresholds{{Low: 0.4, High: 0.6}}
	}
	cs := cascade.Spec{Depth: 3, L: [cascade.MaxLevels]cascade.LevelRef{
		{Model: 0, Thresh: 0}, {Model: 1, Thresh: 0}, {Model: 2, Thresh: cascade.Final}}}
	rt, err := cascade.NewRuntime(cs, models, ths)
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

func BenchmarkExecEngine(b *testing.B) {
	rt := benchRuntime(b)
	rng := rand.New(rand.NewSource(41))
	frames := make([]*img.Image, 256)
	for i := range frames {
		im := img.New(32, 32, img.RGB)
		for p := range im.Pix {
			im.Pix[p] = rng.Float32()
		}
		frames[i] = im
	}

	reportThroughput := func(b *testing.B) {
		b.ReportMetric(float64(b.N*len(frames))/b.Elapsed().Seconds(), "frames/sec")
	}

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range frames {
				if _, _, err := rt.Classify(f); err != nil {
					b.Fatal(err)
				}
			}
		}
		reportThroughput(b)
	})
	// Frame-major vs level-major at one worker isolates the gain of the
	// batched inner loop (one ScoreBatch per level over pooled
	// representation buffers) from worker parallelism. Run with -benchmem:
	// level-major's steady state allocates ~nothing per frame.
	b.Run("frame-major", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rt.ClassifyBatch(frames, exec.Options{Workers: 1, Batch: 32, FrameMajor: true}); err != nil {
				b.Fatal(err)
			}
		}
		reportThroughput(b)
	})
	b.Run("level-major", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rt.ClassifyBatch(frames, exec.Options{Workers: 1, Batch: 32}); err != nil {
				b.Fatal(err)
			}
		}
		reportThroughput(b)
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rt.ClassifyBatch(frames, exec.Options{Workers: workers, Batch: 32}); err != nil {
					b.Fatal(err)
				}
			}
			reportThroughput(b)
		})
	}
}
