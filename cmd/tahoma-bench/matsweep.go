package main

import (
	"fmt"
	"strings"
	"time"

	"tahoma/internal/core"
	"tahoma/internal/exec"
	"tahoma/internal/img"
	"tahoma/internal/scenario"
	"tahoma/internal/synth"
	"tahoma/internal/vdb"
)

// matSweepResult is one (predicates, phase) cell of the label-materialization
// sweep: the same AND-chain served cold (first query, full inference), warm
// (repeat with materialization off — inference again, reps resident) and
// materialized (repeat with the label columns covering the chain — pure
// bitmap algebra).
type matSweepResult struct {
	Predicates int     `json:"predicates"`
	Phase      string  `json:"phase"` // "cold", "warm" or "materialized"
	Rows       int     `json:"rows"`
	UDFCalls   int     `json:"udf_calls"`
	MatHits    int     `json:"mat_hits"`
	Bitmap     bool    `json:"bitmap"`
	RowsPerSec float64 `json:"rows_per_sec"`
	NsPerRow   float64 `json:"ns_per_row"`
	// SpeedupVsCold is rows/sec over the cold cell of the same chain (warm
	// and materialized rows only); BitIdentical confirms the materialized
	// result matched the cold result byte for byte.
	SpeedupVsCold float64 `json:"speedup_vs_cold,omitempty"`
	BitIdentical  bool    `json:"bit_identical,omitempty"`
}

// matMixedResult is one hot/cold mix cell: a 2-predicate query where one
// predicate is already fully materialized and the other has never run. The
// planner must order the covered predicate first (its adjusted rank is ~0),
// so the cold predicate classifies only the hot one's survivors.
type matMixedResult struct {
	Hot               string   `json:"hot"`
	Cold              string   `json:"cold"`
	Order             []string `json:"order"`
	MaterializedFirst bool     `json:"materialized_first"`
	Rows              int      `json:"rows"`
	UDFCalls          int      `json:"udf_calls"`
	RowsPerSec        float64  `json:"rows_per_sec"`
}

// matFingerprint summarizes a result for bit-identity checks.
func matFingerprint(res *vdb.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cols=%v count=%d rows:", res.Columns, res.Count)
	for _, row := range res.Rows {
		for _, v := range row {
			b.WriteString(v.String())
			b.WriteByte(',')
		}
		b.WriteByte(';')
	}
	return b.String()
}

// matCorpus builds a DB over `rows` frames (the trained system's eval split,
// tiled) with the system installed under the given categories.
func matCorpus(sys *core.System, splits synth.Splits, categories []string, rows int) (*vdb.DB, error) {
	cm, err := scenario.NewAnalytic(scenario.Camera, scenario.DefaultParams())
	if err != nil {
		return nil, err
	}
	db := vdb.New(cm)
	db.SetExecOptions(exec.Options{Workers: 1, Batch: 64})
	var images []*img.Image
	var meta []vdb.Metadata
	pool := splits.Eval.Examples
	for i := 0; i < rows; i++ {
		images = append(images, pool[i%len(pool)].Image)
		meta = append(meta, vdb.Metadata{ID: int64(i), Location: "corpus", Camera: "cam-0", TS: int64(i * 10)})
	}
	if err := db.LoadCorpus(images, meta); err != nil {
		return nil, err
	}
	for _, cat := range categories {
		if err := db.InstallPredicate(cat, sys, 2); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// runMatSweep measures what label materialization is worth on the real query
// path: 1/2/3-predicate AND-chains, each served cold (fresh DB, full
// inference), warm (materialization off, so a repeat pays inference again)
// and materialized (repeat on the same DB — the content phase is bitmap
// AND over the label columns, zero inference). The mixed cells then pair a
// pre-materialized predicate with a cold one and record the planner's
// ordering: the covered predicate must come first.
func runMatSweep(rep *sweepReport) error {
	const (
		rows    = 256
		repeats = 3
	)
	cat, err := synth.CategoryByName("cloak")
	if err != nil {
		return err
	}
	splits, err := synth.GenerateBinary(cat, synth.Options{
		BaseSize: 16, TrainN: 120, ConfigN: 40, EvalN: 40, Seed: 7,
	})
	if err != nil {
		return err
	}
	sys, err := core.Initialize("cloak", splits, core.TinyConfig())
	if err != nil {
		return err
	}
	categories := []string{"obja", "objb", "objc"}
	cons := core.Constraints{MaxAccuracyLoss: 0.05}

	rep.MatConfig.Rows = rows
	rep.MatConfig.Repeats = repeats
	rep.MatConfig.Predicates = len(categories)

	for preds := 1; preds <= len(categories); preds++ {
		var terms []string
		for _, c := range categories[:preds] {
			terms = append(terms, fmt.Sprintf("contains_object('%s')", c))
		}
		sql := "SELECT id FROM images WHERE " + strings.Join(terms, " AND ")

		// Cold: first query on a fresh DB — inference + transform work.
		db, err := matCorpus(sys, splits, categories, rows)
		if err != nil {
			return err
		}
		t0 := time.Now()
		cold, err := db.Query(sql, cons)
		if err != nil {
			return fmt.Errorf("mat cold %d-pred: %w", preds, err)
		}
		coldWall := time.Since(t0)
		coldFPS := float64(rows) / coldWall.Seconds()
		rep.MatResults = append(rep.MatResults, matSweepResult{
			Predicates: preds, Phase: "cold", Rows: rows,
			UDFCalls: cold.UDFCalls, MatHits: cold.MatHits,
			RowsPerSec: coldFPS,
			NsPerRow:   float64(coldWall.Nanoseconds()) / rows,
		})

		// Warm: same chain with materialization off — every repeat pays
		// inference again. Best of repeats.
		wdb, err := matCorpus(sys, splits, categories, rows)
		if err != nil {
			return err
		}
		wdb.SetMaterialization(vdb.MatOff)
		var warmBest time.Duration
		var warm *vdb.Result
		for r := 0; r < repeats+1; r++ {
			t0 := time.Now()
			res, err := wdb.Query(sql, cons)
			if err != nil {
				return fmt.Errorf("mat warm %d-pred: %w", preds, err)
			}
			wall := time.Since(t0)
			// The first run per config is warmup (pool fill).
			if r > 0 && (warmBest == 0 || wall < warmBest) {
				warmBest, warm = wall, res
			}
		}
		warmFPS := float64(rows) / warmBest.Seconds()
		rep.MatResults = append(rep.MatResults, matSweepResult{
			Predicates: preds, Phase: "warm", Rows: rows,
			UDFCalls: warm.UDFCalls, MatHits: warm.MatHits,
			RowsPerSec:    warmFPS,
			NsPerRow:      float64(warmBest.Nanoseconds()) / rows,
			SpeedupVsCold: warmFPS / coldFPS,
		})

		// Materialized: repeat on the cold DB — the chain's columns cover
		// their own survivor sets, so the content phase is bitmap algebra.
		var matBest time.Duration
		var mat *vdb.Result
		for r := 0; r < repeats+1; r++ {
			t0 := time.Now()
			res, err := db.Query(sql, cons)
			if err != nil {
				return fmt.Errorf("mat materialized %d-pred: %w", preds, err)
			}
			wall := time.Since(t0)
			if r > 0 && (matBest == 0 || wall < matBest) {
				matBest, mat = wall, res
			}
		}
		if !mat.Bitmap || mat.UDFCalls != 0 {
			return fmt.Errorf("mat sweep %d-pred repeat did not hit the bitmap path (bitmap=%v udf=%d)",
				preds, mat.Bitmap, mat.UDFCalls)
		}
		matFPS := float64(rows) / matBest.Seconds()
		rep.MatResults = append(rep.MatResults, matSweepResult{
			Predicates: preds, Phase: "materialized", Rows: rows,
			UDFCalls: mat.UDFCalls, MatHits: mat.MatHits, Bitmap: mat.Bitmap,
			RowsPerSec:    matFPS,
			NsPerRow:      float64(matBest.Nanoseconds()) / rows,
			SpeedupVsCold: matFPS / coldFPS,
			BitIdentical:  matFingerprint(mat) == matFingerprint(cold),
		})
	}

	// Mixed hot/cold: objb fully materialized by a standalone query, obja
	// never run. The planner's rank folds coverage in, so the EXPLAIN order
	// must put the hot predicate first and the cold one classifies only its
	// survivors.
	mdb, err := matCorpus(sys, splits, categories, rows)
	if err != nil {
		return err
	}
	if _, err := mdb.Query("SELECT COUNT(*) FROM images WHERE contains_object('objb')", cons); err != nil {
		return err
	}
	mixedSQL := "SELECT id FROM images WHERE contains_object('obja') AND contains_object('objb')"
	explain, err := mdb.Explain(mixedSQL, cons)
	if err != nil {
		return err
	}
	var order []string
	for _, line := range strings.Split(explain, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "Content order: "); ok {
			names := strings.SplitN(rest, " (", 2)[0]
			for _, n := range strings.Split(names, ",") {
				order = append(order, strings.TrimSpace(n))
			}
		}
	}
	t0 := time.Now()
	mixed, err := mdb.Query(mixedSQL, cons)
	if err != nil {
		return err
	}
	wall := time.Since(t0)
	rep.MatMixed = append(rep.MatMixed, matMixedResult{
		Hot: "objb", Cold: "obja",
		Order:             order,
		MaterializedFirst: len(order) > 0 && order[0] == "objb",
		Rows:              rows,
		UDFCalls:          mixed.UDFCalls,
		RowsPerSec:        float64(rows) / wall.Seconds(),
	})
	return nil
}
