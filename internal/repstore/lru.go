package repstore

import (
	"container/list"

	"tahoma/internal/img"
)

// lruCore is the shared LRU machinery behind Cache and SharedReps: a
// byte-budgeted recency list over decoded images with hit/miss/eviction
// accounting. It is not goroutine-safe — the owning cache holds the lock.
type lruCore struct {
	capacity int64 // pixel-byte budget
	bytes    int64
	list     *list.List // front = most recent; values are *cacheEntry
	items    map[cacheKey]*list.Element

	hits    int64
	misses  int64
	evicted int64 // cumulative bytes pushed out by the LRU policy
}

type cacheKey struct {
	rep string // transform ID; "" = full-size source
	idx int
}

type cacheEntry struct {
	key cacheKey
	im  *img.Image
}

func newLRUCore(capacityBytes int64) *lruCore {
	return &lruCore{
		capacity: capacityBytes,
		list:     list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

// lookup returns the cached image for key and records a hit, or records a
// miss and returns nil.
func (c *lruCore) lookup(key cacheKey) *img.Image {
	if el, ok := c.items[key]; ok {
		c.list.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).im
	}
	c.misses++
	return nil
}

// insert stores im under key unless an entry is already resident (the
// resident image wins — records are immutable, so the pixels are identical),
// evicting from the cold end until the budget holds. It returns the resident
// image for key.
func (c *lruCore) insert(key cacheKey, im *img.Image) *img.Image {
	if el, ok := c.items[key]; ok {
		c.list.MoveToFront(el)
		return el.Value.(*cacheEntry).im
	}
	c.items[key] = c.list.PushFront(&cacheEntry{key: key, im: im})
	c.bytes += int64(im.Bytes())
	for c.bytes > c.capacity && c.list.Len() > 1 {
		oldest := c.list.Back()
		entry := oldest.Value.(*cacheEntry)
		c.list.Remove(oldest)
		delete(c.items, entry.key)
		c.bytes -= int64(entry.im.Bytes())
		c.evicted += int64(entry.im.Bytes())
	}
	return im
}

// contains reports residency without promoting the entry or touching the
// hit/miss counters — the planner's probe, which must not perturb the very
// state it is estimating.
func (c *lruCore) contains(key cacheKey) bool {
	_, ok := c.items[key]
	return ok
}

func (c *lruCore) stats() CacheStats {
	return CacheStats{Hits: c.hits, Misses: c.misses, EvictedBytes: c.evicted, ResidentBytes: c.bytes}
}
