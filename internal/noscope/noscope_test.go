package noscope

import (
	"tahoma/internal/cascade"
	"tahoma/internal/core"
	"testing"

	"tahoma/internal/synth"
)

func TestDiffDetectorBasics(t *testing.T) {
	if _, err := NewDiffDetector(1, 0.01); err == nil {
		t.Fatal("tiny downsize must error")
	}
	if _, err := NewDiffDetector(8, 0); err == nil {
		t.Fatal("zero threshold must error")
	}
	dd, err := NewDiffDetector(8, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := synth.GenerateStream(synth.ReefStream(32, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	// No reference yet.
	if ok, _ := dd.Reuse(frames[0].Image); ok {
		t.Fatal("reuse before any update")
	}
	dd.Update(frames[0].Image, true)
	// The same frame must be reusable with the recorded label.
	ok, label := dd.Reuse(frames[0].Image)
	if !ok || !label {
		t.Fatal("identical frame not reused")
	}
	// A very different frame (inverted) must not be reused.
	inv := frames[0].Image.Clone()
	for i := range inv.Pix {
		inv.Pix[i] = 1 - inv.Pix[i]
	}
	if ok, _ := dd.Reuse(inv); ok {
		t.Fatal("wildly different frame reused")
	}
	dd.Reset()
	if ok, _ := dd.Reuse(frames[0].Image); ok {
		t.Fatal("reuse after reset")
	}
}

func TestBalancedDataset(t *testing.T) {
	frames, err := synth.GenerateStream(synth.JunctionStream(24, 200, 5))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BalancedDataset(frames, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 40 || ds.Positives() != 20 {
		t.Fatalf("balanced dataset %d/%d", ds.Len(), ds.Positives())
	}
	// All-negative input must error.
	var neg []synth.Frame
	for _, f := range frames {
		if !f.Label {
			neg = append(neg, f)
		}
	}
	if _, err := BalancedDataset(neg, 10, 1); err == nil {
		t.Fatal("single-class input must error")
	}
}

func TestTrainAndRunNoScope(t *testing.T) {
	frames, err := synth.GenerateStream(synth.JunctionStream(24, 500, 9))
	if err != nil {
		t.Fatal(err)
	}
	head, tail := frames[:300], frames[300:]
	cfg := DefaultConfig()
	cfg.TrainN, cfg.ConfigN = 80, 40
	sys, err := Train(head, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(tail)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != len(tail) {
		t.Fatalf("frames %d", res.Frames)
	}
	if res.Accuracy < 0.6 {
		t.Fatalf("noscope accuracy %.3f too low — specialized model failed", res.Accuracy)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput must be positive")
	}
	if res.ReusedFrac < 0 || res.ReusedFrac > 1 || res.OracleFrac < 0 || res.OracleFrac > 1 {
		t.Fatalf("fractions out of range: %+v", res)
	}
	if _, err := sys.Run(nil); err == nil {
		t.Fatal("empty run must error")
	}
}

func TestReefReusesMoreThanJunction(t *testing.T) {
	run := func(opts synth.StreamOptions) Result {
		frames, err := synth.GenerateStream(opts)
		if err != nil {
			t.Fatal(err)
		}
		head, tail := frames[:300], frames[300:]
		cfg := DefaultConfig()
		cfg.TrainN, cfg.ConfigN = 60, 30
		sys, err := Train(head, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(tail)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	reef := run(synth.ReefStream(24, 600, 17))
	junction := run(synth.JunctionStream(24, 600, 17))
	if reef.ReusedFrac <= junction.ReusedFrac {
		t.Fatalf("reef reuse %.2f should exceed junction reuse %.2f",
			reef.ReusedFrac, junction.ReusedFrac)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, DefaultConfig()); err == nil {
		t.Fatal("empty head must error")
	}
	frames, _ := synth.GenerateStream(synth.JunctionStream(24, 50, 3))
	cfg := DefaultConfig()
	cfg.TargetPrecision = 1.5
	if _, err := Train(frames, cfg); err == nil {
		t.Fatal("bad precision must error")
	}
}

func TestSplitsFromFrames(t *testing.T) {
	frames, err := synth.GenerateStream(synth.JunctionStream(24, 300, 21))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SplitsFromFrames(frames, 40, 20, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Train.Len() != 40 || sp.Config.Len() != 20 || sp.Eval.Len() != 20 {
		t.Fatal("split sizes wrong")
	}
	if sp.Train.Positives() != 20 {
		t.Fatal("train split not balanced")
	}
}

func TestSkipFrames(t *testing.T) {
	frames, err := synth.GenerateStream(synth.ReefStream(16, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := SkipFrames(frames, 1); len(got) != 10 {
		t.Fatalf("rate 1 should be identity, got %d", len(got))
	}
	got := SkipFrames(frames, 3)
	if len(got) != 4 { // frames 0, 3, 6, 9
		t.Fatalf("rate 3 kept %d frames, want 4", len(got))
	}
	for i, f := range got {
		if f.Image != frames[i*3].Image {
			t.Fatalf("frame %d is not the %d-th original", i, i*3)
		}
	}
	if got := SkipFrames(nil, 5); len(got) != 0 {
		t.Fatal("empty input should stay empty")
	}
}

func TestRunTahomaDD(t *testing.T) {
	frames, err := synth.GenerateStream(synth.JunctionStream(24, 400, 33))
	if err != nil {
		t.Fatal(err)
	}
	head, tail := frames[:250], frames[250:]
	splits, err := SplitsFromFrames(head, 80, 40, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.TinyConfig()
	sys, err := core.Initialize("video", splits, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A two-level cascade: a thresholded small model, then the deep model
	// (which RunTahomaDD treats as the oracle).
	spec := cascade.Spec{Depth: 2, L: [cascade.MaxLevels]cascade.LevelRef{
		{Model: 0, Thresh: 0},
		{Model: int32(sys.DeepIdx), Thresh: cascade.Final},
	}}
	rt, err := sys.Runtime(spec)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := NewDiffDetector(8, 0.0004)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTahomaDD(rt, dd, DefaultCosts(), tail)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != len(tail) || res.Throughput <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// Frames reaching the deep level get oracle (ground-truth) answers, so
	// overall accuracy must beat chance comfortably.
	if res.Accuracy < 0.6 {
		t.Fatalf("accuracy %.3f too low", res.Accuracy)
	}
	if res.OracleFrac < 0 || res.OracleFrac > 1 {
		t.Fatalf("oracle fraction %v out of range", res.OracleFrac)
	}
	// Empty input errors.
	if _, err := RunTahomaDD(rt, dd, DefaultCosts(), nil); err == nil {
		t.Fatal("empty frames must error")
	}

	// A single-level cascade of a basic model never consults the oracle.
	solo := cascade.Spec{Depth: 1, L: [cascade.MaxLevels]cascade.LevelRef{
		{Model: 0, Thresh: cascade.Final}}}
	rtSolo, err := sys.Runtime(solo)
	if err != nil {
		t.Fatal(err)
	}
	dd2, _ := NewDiffDetector(8, 0.0004)
	resSolo, err := RunTahomaDD(rtSolo, dd2, DefaultCosts(), tail)
	if err != nil {
		t.Fatal(err)
	}
	if resSolo.OracleFrac != 0 {
		t.Fatalf("single basic-model cascade used the oracle: %v", resSolo.OracleFrac)
	}
	if resSolo.Throughput <= res.Throughput {
		t.Fatal("oracle-free cascade should be faster than the deep-terminated one")
	}
}
