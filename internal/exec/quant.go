// Int8 scoring behind the parity wall. A run with Quantize set scores each
// level over the model's armed int8 path and compares the quantized score
// against the guard band around the level's decision boundaries: a score that
// clears every boundary it is measured against by more than the band would
// decide identically under float32, so the int8 decision stands; anything
// inside the band re-runs float32 for that frame. Emitted labels are
// therefore bit-identical to a float32 run — the representation trade shows
// up only in wall time and in the QuantScored/QuantFallbacks accounting.
//
// All four inner loops (Engine level-/frame-major, Fused consume/
// consumeFrameMajor) score through the two helpers here, so the trust rule —
// and with it labels and counters — cannot drift between paths.
package exec

import (
	"fmt"
	"strings"

	"tahoma/internal/img"
)

// QuantMode selects the scoring representation of a run.
type QuantMode int

const (
	// QuantOff (the zero value) scores every level float32.
	QuantOff QuantMode = iota
	// QuantAuto scores levels whose model carries an armed int8 calibration
	// over the int8 kernels, falling back to float32 per frame whenever the
	// quantized score lands inside the guard band around a decision
	// boundary. Labels are bit-identical to QuantOff.
	QuantAuto
)

// String renders the mode as its flag spelling (off|auto).
func (m QuantMode) String() string {
	if m == QuantAuto {
		return "auto"
	}
	return "off"
}

// ParseQuantMode parses a -quantize flag value.
func ParseQuantMode(s string) (QuantMode, error) {
	switch strings.ToLower(s) {
	case "off":
		return QuantOff, nil
	case "auto", "":
		return QuantAuto, nil
	default:
		return QuantOff, fmt.Errorf("exec: unknown quantization mode %q (off|auto)", s)
	}
}

// QuantStats counts the int8 path's work. Embedded in the per-batch and
// per-run stats of both engines.
type QuantStats struct {
	// QuantScored counts (frame, level) scorings decided by the int8 path:
	// the quantized score cleared the guard band and its decision stood.
	QuantScored int `json:"quant_scored"`
	// QuantFallbacks counts (frame, level) scorings whose int8 score landed
	// inside the guard band and were re-scored float32. Fallbacks are not in
	// QuantScored; QuantScored + QuantFallbacks is the int8 kernel's total
	// scoring volume. Each pair still counts once in LevelsRun.
	QuantFallbacks int `json:"quant_fallbacks"`
}

// add folds another stats block in.
func (q *QuantStats) add(o QuantStats) {
	q.QuantScored += o.QuantScored
	q.QuantFallbacks += o.QuantFallbacks
}

// quantCounters projects a batch's embedded counters; nil stays nil (only
// the never-quantized ClassifyOne path passes a nil *BatchStats).
func quantCounters(st *BatchStats) *QuantStats {
	if st == nil {
		return nil
	}
	return &st.QuantStats
}

// quantLevel reports whether this run scores lv over int8.
func quantLevel(quant bool, lv *Level) bool {
	return quant && lv.Model.Quantized()
}

// quantTrusted reports whether int8 score q decides lv exactly as the
// float32 score f would, given |q−f| ≤ band. Every comparison is strict
// where Decide's is inclusive (and vice versa), so the boundary cases where
// f could sit exactly on a threshold always fall back:
//
//   - q ≥ High+band ⇒ f ≥ High — decided positive either way;
//   - q ≤ Low−band  ⇒ f ≤ Low  — decided negative either way;
//   - Low+band < q < High−band ⇒ Low < f < High — undecided either way;
//   - the last level's 0.5 cutoff needs q strictly outside [0.5−band, 0.5+band].
func quantTrusted(q float32, lv *Level, band float32) bool {
	if lv.Last {
		return q > 0.5+band || q < 0.5-band
	}
	t := lv.Thresholds
	return q >= t.High+band || q <= t.Low-band || (q > t.Low+band && q < t.High-band)
}

// quantScratch is a worker's scratch for the guard-band scoring helpers,
// sized once per batch so the steady state allocates nothing.
type quantScratch struct {
	one    [1]*img.Image // single-frame gather for scoreLevelOne
	oneOut [1]float32
	fbIdx  []int        // gather positions that fell inside the guard band
	fbReps []*img.Image // their representations, regathered for the f32 pass
	fbOut  []float32    // their float32 scores
}

func (q *quantScratch) ensure(n int) {
	if cap(q.fbIdx) < n {
		q.fbIdx = make([]int, n)
		q.fbReps = make([]*img.Image, n)
		q.fbOut = make([]float32, n)
	}
}

// scoreLevelBatch scores gather at lv into scores: float32 when the run or
// the model is not quantized, otherwise int8 with per-frame guard-band
// fallback. On return, scores[i] is the score the decision loop must apply
// its usual rules to — a trusted int8 score decides identically to its
// float32 counterpart, and a fallback position holds the float32 score
// itself, so callers need no quantization awareness past this call.
func scoreLevelBatch(lv *Level, gather []*img.Image, scores []float32, qsc *quantScratch, quant bool, st *QuantStats) error {
	if !quantLevel(quant, lv) {
		return lv.Model.ScoreBatchInto(gather, scores)
	}
	if err := lv.Model.ScoreBatchQuantInto(gather, scores); err != nil {
		return err
	}
	band := lv.Model.Quant.GuardBand()
	qsc.ensure(len(gather))
	fb := qsc.fbIdx[:0]
	for i, q := range scores {
		if !quantTrusted(q, lv, band) {
			fb = append(fb, i)
		}
	}
	st.QuantScored += len(gather) - len(fb)
	st.QuantFallbacks += len(fb)
	if len(fb) == 0 {
		return nil
	}
	reps, out := qsc.fbReps[:len(fb)], qsc.fbOut[:len(fb)]
	for t, i := range fb {
		reps[t] = gather[i]
	}
	if err := lv.Model.ScoreBatchInto(reps, out); err != nil {
		return err
	}
	for t, i := range fb {
		scores[i] = out[t]
		reps[t] = nil // don't pin representations between batches
	}
	return nil
}

// scoreLevelOne is scoreLevelBatch for a single frame — the frame-major
// loops' scoring primitive, so the oracle paths take the identical
// trust-or-fallback decision (and count it identically) per (frame, level).
// st may be nil only when quant is false.
func scoreLevelOne(lv *Level, rep *img.Image, qsc *quantScratch, quant bool, st *QuantStats) (float32, error) {
	if !quantLevel(quant, lv) {
		return lv.Model.Score(rep)
	}
	qsc.one[0] = rep
	err := lv.Model.ScoreBatchQuantInto(qsc.one[:], qsc.oneOut[:])
	qsc.one[0] = nil
	if err != nil {
		return 0, err
	}
	q := qsc.oneOut[0]
	if quantTrusted(q, lv, lv.Model.Quant.GuardBand()) {
		st.QuantScored++
		return q, nil
	}
	st.QuantFallbacks++
	return lv.Model.Score(rep)
}
