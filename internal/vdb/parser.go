// Package vdb is a miniature visual analytics database: the query-system
// shell around TAHOMA that the paper envisions (Sections I and V-A,
// "Integration considerations"). It stores image metadata relationally,
// treats each installed contains_object predicate as a UDF-backed virtual
// column, plans queries so cheap metadata predicates run before expensive
// content predicates, and materializes content-predicate results so repeat
// queries are free.
//
// The SQL dialect is deliberately small:
//
//	SELECT * | COUNT(*) | col[, col...]
//	FROM images
//	WHERE cond [AND cond ...]
//	[LIMIT n]
//
// where cond is either a metadata comparison (location = 'uptown',
// ts >= 300, id != 7) or contains_object('category').
package vdb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// CompareOp is a metadata comparison operator.
type CompareOp string

// Supported comparison operators.
const (
	OpEq CompareOp = "="
	OpNe CompareOp = "!="
	OpLt CompareOp = "<"
	OpLe CompareOp = "<="
	OpGt CompareOp = ">"
	OpGe CompareOp = ">="
)

// Value is a typed literal: either a string or an int64.
type Value struct {
	IsString bool
	Str      string
	Int      int64
}

// String renders the literal.
func (v Value) String() string {
	if v.IsString {
		return "'" + v.Str + "'"
	}
	return strconv.FormatInt(v.Int, 10)
}

// MetaCond is a metadata comparison.
type MetaCond struct {
	Column string
	Op     CompareOp
	Val    Value
}

// ContentCond is a contains_object predicate.
type ContentCond struct {
	Category string
	Negated  bool
}

// Query is a parsed SELECT statement.
type Query struct {
	CountStar bool
	Columns   []string // empty with Star/CountStar
	Star      bool
	Table     string
	Meta      []MetaCond
	Content   []ContentCond
	Limit     int // 0 = no limit
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokString
	tokNumber
	tokSymbol
	tokEOF
)

type token struct {
	kind tokKind
	text string
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			for j < n && input[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("vdb: unterminated string literal at offset %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j]})
			i = j + 1
		case unicode.IsDigit(c) || (c == '-' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			j := i + 1
			for j < n && (unicode.IsDigit(rune(input[j]))) {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j]})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j]})
			i = j
		case strings.ContainsRune("<>!=", c):
			j := i + 1
			if j < n && input[j] == '=' {
				j++
			}
			toks = append(toks, token{tokSymbol, input[i:j]})
			i = j
		case strings.ContainsRune("(),*", c):
			toks = append(toks, token{tokSymbol, string(c)})
			i++
		default:
			return nil, fmt.Errorf("vdb: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) kw(s string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(s string) error {
	if !p.kw(s) {
		return fmt.Errorf("vdb: expected %q, found %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) expectSym(s string) error {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.pos++
		return nil
	}
	return fmt.Errorf("vdb: expected %q, found %q", s, t.text)
}

// Parse parses one SELECT statement.
func Parse(sql string) (*Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{}
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}

	switch {
	case p.peek().kind == tokSymbol && p.peek().text == "*":
		p.next()
		q.Star = true
	case p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, "count"):
		p.next()
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		if err := p.expectSym("*"); err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		q.CountStar = true
	default:
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("vdb: expected column name, found %q", t.text)
			}
			q.Columns = append(q.Columns, strings.ToLower(t.text))
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	tbl := p.next()
	if tbl.kind != tokIdent {
		return nil, fmt.Errorf("vdb: expected table name, found %q", tbl.text)
	}
	q.Table = strings.ToLower(tbl.text)

	if p.kw("where") {
		for {
			if err := p.parseCond(q); err != nil {
				return nil, err
			}
			if p.kw("and") {
				continue
			}
			break
		}
	}

	if p.kw("limit") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("vdb: expected LIMIT count, found %q", t.text)
		}
		limit, err := strconv.Atoi(t.text)
		if err != nil || limit <= 0 {
			return nil, fmt.Errorf("vdb: invalid LIMIT %q", t.text)
		}
		q.Limit = limit
	}

	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("vdb: trailing input starting at %q", p.peek().text)
	}
	if len(q.Meta) == 0 && len(q.Content) == 0 && !q.Star && !q.CountStar && len(q.Columns) == 0 {
		return nil, fmt.Errorf("vdb: empty query")
	}
	return q, nil
}

func (p *parser) parseCond(q *Query) error {
	negated := false
	if p.kw("not") {
		negated = true
	}
	t := p.next()
	if t.kind != tokIdent {
		return fmt.Errorf("vdb: expected condition, found %q", t.text)
	}
	name := strings.ToLower(t.text)
	if name == "contains_object" {
		if err := p.expectSym("("); err != nil {
			return err
		}
		arg := p.next()
		if arg.kind != tokString && arg.kind != tokIdent {
			return fmt.Errorf("vdb: contains_object expects a category, found %q", arg.text)
		}
		if err := p.expectSym(")"); err != nil {
			return err
		}
		q.Content = append(q.Content, ContentCond{Category: strings.ToLower(arg.text), Negated: negated})
		return nil
	}
	if negated {
		return fmt.Errorf("vdb: NOT is only supported on contains_object")
	}
	op := p.next()
	if op.kind != tokSymbol {
		return fmt.Errorf("vdb: expected comparison operator after %q, found %q", name, op.text)
	}
	var cmp CompareOp
	switch op.text {
	case "=", "!=", "<", "<=", ">", ">=":
		cmp = CompareOp(op.text)
	default:
		return fmt.Errorf("vdb: unknown operator %q", op.text)
	}
	val := p.next()
	var v Value
	switch val.kind {
	case tokString:
		v = Value{IsString: true, Str: val.text}
	case tokNumber:
		n, err := strconv.ParseInt(val.text, 10, 64)
		if err != nil {
			return fmt.Errorf("vdb: bad number %q", val.text)
		}
		v = Value{Int: n}
	default:
		return fmt.Errorf("vdb: expected literal, found %q", val.text)
	}
	q.Meta = append(q.Meta, MetaCond{Column: name, Op: cmp, Val: v})
	return nil
}
