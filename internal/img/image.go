// Package img provides the image representation TAHOMA's models consume:
// planar CHW float32 images with values in [0,1], together with the physical
// representation operations the paper's input-transformation functions are
// built on — bilinear resizing, color-channel extraction, grayscale
// conversion and horizontal flipping — and a compact on-disk codec.
package img

import "fmt"

// ColorMode identifies the channel layout of an image.
type ColorMode uint8

// Channel layouts. RGB is 3 planes; the single-channel modes record which
// projection produced the plane so that data-handling costs can be accounted
// per representation.
const (
	RGB ColorMode = iota
	Red
	Green
	Blue
	Gray
)

// String returns the short name used in transform IDs ("rgb", "r", ...).
func (m ColorMode) String() string {
	switch m {
	case RGB:
		return "rgb"
	case Red:
		return "r"
	case Green:
		return "g"
	case Blue:
		return "b"
	case Gray:
		return "gray"
	default:
		return fmt.Sprintf("ColorMode(%d)", uint8(m))
	}
}

// Channels returns the number of planes for the mode.
func (m ColorMode) Channels() int {
	if m == RGB {
		return 3
	}
	return 1
}

// Image is a planar (channel-major) float32 image with values nominally in
// [0,1]. Pix holds C×H×W values: plane c starts at offset c*H*W.
type Image struct {
	W, H int
	Mode ColorMode
	Pix  []float32
}

// New returns a zero-filled image of the given size and mode.
func New(w, h int, mode ColorMode) *Image {
	return &Image{W: w, H: h, Mode: mode, Pix: make([]float32, mode.Channels()*w*h)}
}

// Channels returns the number of planes.
func (im *Image) Channels() int { return im.Mode.Channels() }

// At returns the value of channel c at (x, y). No bounds checking beyond the
// slice's own.
func (im *Image) At(c, x, y int) float32 {
	return im.Pix[c*im.W*im.H+y*im.W+x]
}

// Set stores v into channel c at (x, y).
func (im *Image) Set(c, x, y int, v float32) {
	im.Pix[c*im.W*im.H+y*im.W+x] = v
}

// Plane returns the sub-slice for channel c.
func (im *Image) Plane(c int) []float32 {
	n := im.W * im.H
	return im.Pix[c*n : (c+1)*n]
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Mode: im.Mode, Pix: make([]float32, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// Bytes returns the in-memory footprint of the pixel data in bytes, used by
// analytic cost models to account for loading costs.
func (im *Image) Bytes() int { return len(im.Pix) * 4 }

// StoredBytes returns the size of the image when stored in the TIMG uint8
// format (header + one byte per sample), used to model disk load costs.
func (im *Image) StoredBytes() int { return timgHeaderSize + len(im.Pix) }

// Clamp clips all samples into [0,1] in place and returns the image.
func (im *Image) Clamp() *Image {
	for i, v := range im.Pix {
		if v < 0 {
			im.Pix[i] = 0
		} else if v > 1 {
			im.Pix[i] = 1
		}
	}
	return im
}

// Resize returns a new image of size w×h using bilinear interpolation
// (nearest-sample at the borders). Shrinking large factors uses simple
// bilinear sampling, which is what lightweight ingest pipelines typically do.
func Resize(src *Image, w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid resize target %dx%d", w, h))
	}
	dst := New(w, h, src.Mode)
	ResizeInto(dst, src)
	return dst
}

// ResizeInto is Resize into a caller-owned destination, the allocation-free
// primitive the execution engine's pooled representation buffers are built
// on. dst's geometry selects the target size; its channel count must match
// src's. The samples written are bit-identical to Resize's.
func ResizeInto(dst, src *Image) {
	if dst.Channels() != src.Channels() {
		panic(fmt.Sprintf("img: ResizeInto %v -> %v channel mismatch", src.Mode, dst.Mode))
	}
	w, h := dst.W, dst.H
	if src.W == w && src.H == h {
		copy(dst.Pix, src.Pix)
		return
	}
	xScale := float32(src.W) / float32(w)
	yScale := float32(src.H) / float32(h)
	for c := 0; c < src.Channels(); c++ {
		sp := src.Plane(c)
		dp := dst.Plane(c)
		for y := 0; y < h; y++ {
			sy := (float32(y)+0.5)*yScale - 0.5
			if sy < 0 {
				sy = 0
			}
			y0 := int(sy)
			y1 := y0 + 1
			if y1 >= src.H {
				y1 = src.H - 1
			}
			fy := sy - float32(y0)
			for x := 0; x < w; x++ {
				sx := (float32(x)+0.5)*xScale - 0.5
				if sx < 0 {
					sx = 0
				}
				x0 := int(sx)
				x1 := x0 + 1
				if x1 >= src.W {
					x1 = src.W - 1
				}
				fx := sx - float32(x0)
				v00 := sp[y0*src.W+x0]
				v01 := sp[y0*src.W+x1]
				v10 := sp[y1*src.W+x0]
				v11 := sp[y1*src.W+x1]
				top := v00 + (v01-v00)*fx
				bot := v10 + (v11-v10)*fx
				dp[y*w+x] = top + (bot-top)*fy
			}
		}
	}
}

// ExtractChannel returns the single-channel image for one of Red, Green,
// Blue. For a source that is already single-channel it returns a copy with
// the requested mode label. Requesting a channel from a Gray image is allowed
// (the plane is reused) because a grayscale camera feed has only one plane.
func ExtractChannel(src *Image, mode ColorMode) *Image {
	out := New(src.W, src.H, mode)
	ExtractChannelInto(out, src, mode)
	return out
}

// ExtractChannelInto is ExtractChannel into a caller-owned single-channel
// destination of the same size as src.
func ExtractChannelInto(dst, src *Image, mode ColorMode) {
	var idx int
	switch mode {
	case Red:
		idx = 0
	case Green:
		idx = 1
	case Blue:
		idx = 2
	default:
		panic(fmt.Sprintf("img: ExtractChannel mode must be Red/Green/Blue, got %v", mode))
	}
	if dst.W != src.W || dst.H != src.H || dst.Channels() != 1 {
		panic(fmt.Sprintf("img: ExtractChannelInto destination %dx%d/%d for source %dx%d", dst.W, dst.H, dst.Channels(), src.W, src.H))
	}
	if src.Mode != RGB {
		copy(dst.Pix, src.Plane(0))
		return
	}
	copy(dst.Pix, src.Plane(idx))
}

// ToGray converts to single-channel grayscale using the Rec.601 luma weights.
// Single-channel inputs are copied with the Gray label.
func ToGray(src *Image) *Image {
	out := New(src.W, src.H, Gray)
	ToGrayInto(out, src)
	return out
}

// ToGrayInto is ToGray into a caller-owned single-channel destination of the
// same size as src.
func ToGrayInto(dst, src *Image) {
	if dst.W != src.W || dst.H != src.H || dst.Channels() != 1 {
		panic(fmt.Sprintf("img: ToGrayInto destination %dx%d/%d for source %dx%d", dst.W, dst.H, dst.Channels(), src.W, src.H))
	}
	if src.Mode != RGB {
		copy(dst.Pix, src.Plane(0))
		return
	}
	r, g, b := src.Plane(0), src.Plane(1), src.Plane(2)
	for i := range dst.Pix {
		dst.Pix[i] = 0.299*r[i] + 0.587*g[i] + 0.114*b[i]
	}
}

// FlipH returns the image mirrored left-to-right (the paper's data
// augmentation).
func FlipH(src *Image) *Image {
	out := New(src.W, src.H, src.Mode)
	for c := 0; c < src.Channels(); c++ {
		sp, dp := src.Plane(c), out.Plane(c)
		for y := 0; y < src.H; y++ {
			row := y * src.W
			for x := 0; x < src.W; x++ {
				dp[row+x] = sp[row+src.W-1-x]
			}
		}
	}
	return out
}
