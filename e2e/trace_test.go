package e2e

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite committed e2e traces from the generator")

// TestTracesCommitted pins the committed testdata/traces/*.json files to the
// trace generator: the replayed traffic is exactly what code review saw.
// Regenerate with -update after changing Mixes.
func TestTracesCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "traces")
	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("%v", err)
		}
	}
	seen := map[string]bool{}
	for _, tr := range Mixes(FixtureRows) {
		if seen[tr.Mix] {
			t.Fatalf("duplicate mix name %q", tr.Mix)
		}
		seen[tr.Mix] = true
		blob, err := MarshalTrace(tr)
		if err != nil {
			t.Fatalf("%s: %v", tr.Mix, err)
		}
		path := filepath.Join(dir, tr.Mix+".json")
		if *update {
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatalf("%v", err)
			}
			continue
		}
		committed, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to generate)", err)
		}
		if !bytes.Equal(committed, blob) {
			t.Errorf("%s: committed trace is stale; regenerate with -update", path)
		}
		// The committed file must round-trip into the same trace the
		// generator produced — it is the replay's source of truth.
		loaded, err := LoadTrace(path)
		if err != nil {
			t.Fatalf("%v", err)
		}
		reblob, err := MarshalTrace(loaded)
		if err != nil {
			t.Fatalf("%v", err)
		}
		if !bytes.Equal(reblob, blob) {
			t.Errorf("%s: trace does not round-trip through its JSON form", path)
		}
	}
}

// TestTraceDeterminismRules enforces the trace-authorship contract that
// makes the serial reference replay order-equivalent to every concurrent
// interleaving: a mix that ingests may only run non-barrier queries pinned
// to the stable initial corpus, ingested IDs never collide with fixture
// rows, and every mix carries a latency budget.
func TestTraceDeterminismRules(t *testing.T) {
	for _, tr := range Mixes(FixtureRows) {
		if tr.SLOP99MS <= 0 {
			t.Errorf("%s: no p99 budget", tr.Mix)
		}
		if tr.Concurrency <= 0 {
			t.Errorf("%s: no concurrency", tr.Mix)
		}
		hasIngest := !tr.QueryOnly()
		ids := map[int64]bool{}
		for i, op := range tr.Ops {
			switch op.Kind {
			case "query":
				if hasIngest && !op.Barrier && !stableQuery(op.SQL) {
					t.Errorf("%s op %d: concurrent query %q in an ingesting mix is not pinned to the stable corpus (ts < %d)",
						tr.Mix, i, op.SQL, ingestBaseID)
				}
			case "ingest":
				if len(op.IDs) == 0 || len(op.IDs) != len(op.Src) {
					t.Errorf("%s op %d: malformed ingest op", tr.Mix, i)
				}
				for k, id := range op.IDs {
					if id < ingestBaseID {
						t.Errorf("%s op %d: ingest ID %d collides with the fixture corpus", tr.Mix, i, id)
					}
					if ids[id] {
						t.Errorf("%s op %d: duplicate ingest ID %d", tr.Mix, i, id)
					}
					ids[id] = true
					if op.Src[k] < 0 || op.Src[k] >= FixtureRows {
						t.Errorf("%s op %d: source index %d out of range", tr.Mix, i, op.Src[k])
					}
				}
			default:
				t.Errorf("%s op %d: unknown kind %q", tr.Mix, i, op.Kind)
			}
		}
	}
}

// stableQuery recognizes the guards that pin a query's answer to the initial
// corpus while ingest runs concurrently.
func stableQuery(sql string) bool {
	for _, guard := range []string{"ts < 1000", "ts < 10", "location = 'corpus'"} {
		if bytes.Contains([]byte(sql), []byte(guard)) {
			return true
		}
	}
	return false
}
