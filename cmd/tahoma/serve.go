package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tahoma/internal/exec"
	"tahoma/internal/faults"
	"tahoma/internal/img"
	"tahoma/internal/planner"
	"tahoma/internal/repstore"
	"tahoma/internal/scenario"
	"tahoma/internal/server"
	"tahoma/internal/vdb"
)

// cmdServe runs the long-lived concurrent query service: one open DB, an
// HTTP front end with a bounded admission pool, and a cross-query shared
// representation cache so concurrent queries reuse each other's transform
// work. Results are bit-identical to one-shot `tahoma query` runs.
//
// With -wal-dir the service is durable: every acknowledged ingest is fsynced
// to a write-ahead journal before the 200, a background checkpointer bounds
// replay, and startup recovers checkpoint + journal before /readyz flips to
// 200. The listener binds before recovery — "listening on http://..." on
// stderr marks the moment clients can start polling /readyz — and SIGTERM/
// SIGINT drains in-flight queries, takes a final checkpoint and exits 0.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	zooDirs := fs.String("zoo", "", "model repository directories, comma-separated (required; one predicate each)")
	corpusDir := fs.String("corpus", "", "representation store directory (required)")
	scen := fs.String("scenario", "camera", "deployment scenario")
	loss := fs.Float64("accuracy-loss", 0.05, "default permissible accuracy loss (Uacc) when a request names none; 0 = no loss (most accurate cascade)")
	workers := fs.Int("workers", 0, "classification worker goroutines per query (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "frames per execution-engine batch (0 = engine default)")
	fused := fs.Bool("fused", true, "fuse multi-predicate queries into one shared representation-slot plan")
	order := fs.String("order", "rank", "content-predicate ordering: rank (cost/(1-selectivity), adaptive) or static (cheapest expected cascade first)")
	prefetch := fs.Int("prefetch", 0, "async ingest ring depth for fused queries (0 = auto, <0 = synchronous)")
	storeCorpus := fs.Bool("store-corpus", false, "serve straight out of the representation store through an LRU cache instead of loading sources into memory")
	cacheMB := fs.Int("cache-mb", 64, "decoded-record LRU cache budget in MiB for -store-corpus")
	serveReps := fs.Bool("serve-reps", false, "load pre-materialized representations from the store (implies -store-corpus)")
	shareRepsMB := fs.Int("share-reps-mb", 64, "cross-query shared representation cache budget in MiB (0 disables)")
	maxConcurrent := fs.Int("max-concurrent", 0, "queries executing at once (0 = GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "queries waiting for a worker (0 = 4x max-concurrent, <0 = no queue)")
	queueTimeout := fs.Duration("queue-timeout", 30*time.Second, "how long a query may wait for a worker before a 503")
	materialize := fs.String("materialize", "on", "label materialization: on (cache classified labels as bitmap columns), off (re-infer every query), bg (on + background analyzer pre-materializes hot predicates while the admission pool is idle)")
	matMB := fs.Int("mat-mb", 0, "materialized-label byte budget in MiB (0 = unbounded); coldest columns are evicted over budget")
	quantize := fs.String("quantize", "auto", "int8 scoring: auto (quantized kernels on calibrated models, float32 guard-band fallback keeps labels bit-identical) or off (float32 everywhere)")
	deadline := fs.Duration("deadline", 0, "default per-query deadline when a request carries no Deadline-Ms header (0 = none); also bounds the graceful-shutdown drain")
	fault := fs.String("fault", "", "arm fault-injection points for chaos testing, e.g. 'store.rep-read=error,store.rep-slow=slow:50ms' (see internal/faults)")
	walDir := fs.String("wal-dir", "", "write-ahead journal + checkpoint directory; enables durable ingest and crash recovery (implies -store-corpus)")
	checkpointEvery := fs.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval under -wal-dir; bounds journal replay after a crash")
	trigger := fs.Bool("trigger", false, "classify newly ingested rows immediately (ingest-time trigger materialization, most accurate cascade)")
	fs.Parse(args)
	if *zooDirs == "" || *corpusDir == "" {
		return fmt.Errorf("serve: -zoo and -corpus are required")
	}
	if *walDir != "" {
		// Durability recovers into (and truncates) the backing store; an
		// in-memory image of it could silently diverge.
		*storeCorpus = true
	}
	if *fault != "" {
		if err := faults.Parse(*fault); err != nil {
			return fmt.Errorf("serve: -fault: %w", err)
		}
		log.Printf("FAULT INJECTION ARMED: %s (chaos testing only)", *fault)
	}
	kind, err := parseScenario(*scen)
	if err != nil {
		return err
	}

	store, err := repstore.Open(*corpusDir)
	if err != nil {
		return err
	}
	defer store.Close()
	meta := make([]vdb.Metadata, store.Count())
	for i := range meta {
		meta[i] = vdb.Metadata{ID: int64(i), Location: "corpus", Camera: "cam-0", TS: int64(i)}
	}

	cm, err := scenario.NewAnalytic(kind, scenario.DefaultParams())
	if err != nil {
		return err
	}
	ord, err := planner.ParseOrder(*order)
	if err != nil {
		return err
	}
	matMode, err := vdb.ParseMatMode(*materialize)
	if err != nil {
		return err
	}
	quantMode, err := exec.ParseQuantMode(*quantize)
	if err != nil {
		return err
	}
	db := vdb.New(cm)
	db.SetExecOptions(exec.Options{Workers: *workers, Batch: *batch, Prefetch: *prefetch})
	db.SetFusion(*fused)
	db.SetPlanOptions(vdb.PlanOptions{Order: ord})
	db.SetMaterialization(matMode)
	db.SetMatBudget(int64(*matMB) << 20)
	db.SetQuantization(quantMode)
	if *serveReps {
		*storeCorpus = true
	}

	opts := server.Options{
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		QueueTimeout:  *queueTimeout,
		// server.Options uses 0 = "0.05 default", negative = "no loss";
		// at the flag level an explicit 0 means no loss.
		DefaultAccuracyLoss: *loss,
		DefaultDeadline:     *deadline,
		// The listener binds before corpus load and crash recovery: the
		// server answers /healthz and /readyz (503) immediately and flips
		// ready only when it can actually serve.
		StartUnready: true,
	}
	if *loss == 0 {
		opts.DefaultAccuracyLoss = -1
	}
	if *shareRepsMB > 0 {
		rc, err := vdb.NewSharedRepCache(int64(*shareRepsMB) << 20)
		if err != nil {
			return err
		}
		opts.RepCache = rc
	}
	srv := server.New(db, opts)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("listening on http://%s (not ready: recovering)", ln.Addr())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	// Initialization behind the unready gate: corpus, predicates, recovery.
	var stopAnalyzer, stopCheckpointer func()
	initialize := func() error {
		if *storeCorpus {
			if err := db.LoadCorpusFromStore(store, int64(*cacheMB)<<20, meta); err != nil {
				return err
			}
			db.ServeReps(*serveReps)
		} else {
			var images []*img.Image
			if err := store.ScanSource(func(i int, im *img.Image) error {
				images = append(images, im)
				return nil
			}); err != nil {
				return err
			}
			if err := db.LoadCorpus(images, meta); err != nil {
				return err
			}
		}
		if opts.RepCache != nil {
			// Loading a corpus drops the row-keyed rep cache; re-install it
			// now that the rows it will be keyed by are final.
			db.SetRepCache(opts.RepCache)
		}

		for _, dir := range strings.Split(*zooDirs, ",") {
			dir = strings.TrimSpace(dir)
			if dir == "" {
				continue
			}
			sys, err := loadSystem(dir)
			if err != nil {
				return err
			}
			category := strings.TrimSuffix(strings.TrimPrefix(sys.Predicate, "contains_object("), ")")
			if err := db.InstallPredicate(category, sys, 2); err != nil {
				return err
			}
			log.Printf("installed predicate %q from %s", category, dir)
		}
		if *trigger {
			db.SetTriggerPolicy(vdb.TriggerPolicy{Enabled: true})
		}

		if *walDir != "" {
			rstats, err := db.EnableDurability(vdb.DurabilityOptions{Dir: *walDir})
			if err != nil {
				return fmt.Errorf("serve: recovery: %w", err)
			}
			log.Printf("recovered %d rows in %dms (checkpoint=%v, wal_replayed=%d, wal_truncated_bytes=%d)",
				rstats.Rows, rstats.RecoveryMS, rstats.CheckpointLoaded, rstats.Replayed, rstats.TruncatedBytes)
			stopCheckpointer, err = db.StartCheckpointer(ctx, vdb.CheckpointerOptions{Every: *checkpointEvery},
				func(err error) { log.Printf("checkpoint failed (will retry): %v", err) })
			if err != nil {
				return err
			}
		}

		if matMode == vdb.MatBg {
			// The analyzer gates on the admission pool: it only classifies
			// when no query is executing or queued, so foreground latency is
			// never spent on pre-materialization.
			var err error
			stopAnalyzer, err = db.StartAnalyzer(ctx, vdb.AnalyzerOptions{Idle: srv.Idle})
			if err != nil {
				return err
			}
			log.Printf("background analyzer on: hot predicates pre-materialize while the admission pool is idle")
		}
		return nil
	}

	// shutdown drains and persists: stop admitting (unready), let in-flight
	// work finish bounded by -deadline, stop the background goroutines, then
	// take the final checkpoint so a restart replays nothing.
	shutdown := func() error {
		srv.SetReady(false)
		bound := 30 * time.Second
		if *deadline > 0 {
			bound = *deadline
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), bound)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		if stopAnalyzer != nil {
			stopAnalyzer()
		}
		if stopCheckpointer != nil {
			stopCheckpointer()
		}
		if *walDir != "" {
			if cerr := db.CloseDurability(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}

	if err := initialize(); err != nil {
		_ = shutdown()
		return err
	}
	srv.SetReady(true)
	log.Printf("serving %d rows, predicates [%s] on http://%s (POST /query, GET /explain, POST /ingest, GET /stats)",
		db.Count(), strings.Join(db.Predicates(), ", "), ln.Addr())

	select {
	case err := <-done:
		_ = shutdown()
		return err
	case <-ctx.Done():
		log.Printf("shutting down: draining in-flight queries, final checkpoint...")
		err := shutdown()
		if err == nil {
			log.Printf("shutdown complete")
		}
		return err
	}
}
