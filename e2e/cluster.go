package e2e

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"tahoma/internal/leakcheck"
	"tahoma/internal/server"
)

// TB is the subset of *testing.T the harness needs — an interface so the
// non-test half of the package (tahoma-bench's sweep) never imports testing.
type TB interface {
	Helper()
	Logf(format string, args ...any)
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
	Cleanup(func())
	Failed() bool
}

var sharedBin struct {
	once sync.Once
	err  error
	path string
}

// BuildBinary compiles the real `tahoma` CLI once per test run. Everything
// the harness asserts runs against this binary — real flags, real signals,
// real fsyncs — not an in-process stand-in.
func BuildBinary(t TB) string {
	t.Helper()
	sharedBin.once.Do(func() {
		dir, err := os.MkdirTemp("", "tahoma-e2e-bin")
		if err != nil {
			sharedBin.err = err
			return
		}
		sharedBin.path = filepath.Join(dir, "tahoma")
		out, err := exec.Command("go", "build", "-o", sharedBin.path, "tahoma/cmd/tahoma").CombinedOutput()
		if err != nil {
			sharedBin.err = fmt.Errorf("go build tahoma/cmd/tahoma: %v\n%s", err, out)
		}
	})
	if sharedBin.err != nil {
		t.Fatalf("%v", sharedBin.err)
	}
	return sharedBin.path
}

// Proc is one running `tahoma serve` subprocess: its base URL (parsed from
// the "listening on http://" stderr line), a retry-free client, and the
// captured log for failure dumps.
type Proc struct {
	Base   string
	Client *server.Client

	cmd     *exec.Cmd
	exited  chan struct{} // closed once the process has been reaped
	exitErr error         // cmd.Wait's result; valid after exited closes

	mu  sync.Mutex
	log []string
}

// Wait blocks until the process exits and returns its Wait error; safe to
// call from multiple places.
func (p *Proc) Wait() error {
	<-p.exited
	return p.exitErr
}

func (p *Proc) appendLog(line string) {
	p.mu.Lock()
	if len(p.log) < 500 {
		p.log = append(p.log, line)
	}
	p.mu.Unlock()
}

// Dump returns the captured stderr, for failure messages and artifacts.
func (p *Proc) Dump() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.log, "\n")
}

// Kill delivers SIGKILL and reaps; the process may already be dead (a
// self-killed crash point, a finished graceful stop), which is fine.
func (p *Proc) Kill() {
	_ = p.cmd.Process.Kill()
	p.Wait()
}

// GracefulStop delivers SIGTERM and requires a clean exit 0 within timeout —
// the drain + final-checkpoint path, not a crash.
func (p *Proc) GracefulStop(timeout time.Duration) error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-p.exited:
		if p.exitErr != nil {
			return fmt.Errorf("SIGTERM exit: %v\n%s", p.exitErr, p.Dump())
		}
		return nil
	case <-time.After(timeout):
		p.Kill()
		return fmt.Errorf("graceful shutdown hung (killed after %s)\n%s", timeout, p.Dump())
	}
}

// defaultClientOptions are the harness's client settings: retries off so
// every server-side failure surfaces (a silent retry would fold server
// pathologies into fake latency), generous per-attempt timeout so a slow CI
// runner does not masquerade as a hang.
var defaultClientOptions = server.ClientOptions{
	MaxRetries: -1, ConnectTimeout: 2 * time.Second, RequestTimeout: 60 * time.Second,
}

// StartProc launches the binary with args and waits for the listener line —
// the moment /readyz is pollable, which may be well before the server is
// ready. A SIGKILL cleanup is registered as the safety net; orderly
// teardowns (GracefulStop) run first and make it a no-op.
func StartProc(t TB, bin string, args []string) *Proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	p := &Proc{cmd: cmd, exited: make(chan struct{})}
	t.Cleanup(p.Kill)
	baseCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.appendLog(line)
			if i := strings.Index(line, "listening on http://"); i >= 0 {
				addr := strings.Fields(line[i+len("listening on "):])[0]
				select {
				case baseCh <- addr:
				default:
				}
			}
		}
		p.exitErr = cmd.Wait()
		close(p.exited)
	}()
	select {
	case base := <-baseCh:
		p.Base = base
		p.Client = server.NewClientWith(base, defaultClientOptions)
	case <-p.exited:
		t.Fatalf("serve exited before listening:\n%s", p.Dump())
	case <-time.After(60 * time.Second):
		t.Fatalf("serve never printed its listener:\n%s", p.Dump())
	}
	return p
}

// ServerOptions shape one serving process's arms for a scenario.
type ServerOptions struct {
	// Fault arms fault-injection points (`serve -fault`).
	Fault string
	// ServeReps serves pre-materialized representations from the store.
	ServeReps bool
	// Trigger classifies ingested rows at append time.
	Trigger bool
	// Durable gives the process a write-ahead journal + checkpoints
	// (`-wal-dir`), with CheckpointEvery bounding replay (0 = serve default).
	Durable         bool
	CheckpointEvery time.Duration
	// Materialize overrides `-materialize` ("" = serve default "on").
	Materialize string
	// Quantize overrides `-quantize` ("" = serve default "auto").
	Quantize string
	// MaxQueue overrides `-max-queue` (0 = serve default). Fleet scenarios
	// raise it so N streams + standing queries never shed on a 1-core runner.
	MaxQueue int
	// ExtraArgs are appended verbatim.
	ExtraArgs []string
}

// Cluster is one or more serving processes over identical copies of the
// fixture corpus — "one logical deployment" as far as a trace replay is
// concerned, with responses round-robined across the processes.
type Cluster struct {
	Procs []*Proc
	t     TB
}

// StartCluster copies the fixture store per process (ingest and durability
// mutate it), launches n `tahoma serve` subprocesses, and blocks on the
// /readyz barrier for each. Teardown is graceful (SIGTERM, exit 0 required)
// and leak-checked: leakcheck is registered before any process starts, so
// its cleanup runs after every teardown and catches any goroutine the
// harness machinery leaked.
func StartCluster(t TB, fx *Fixture, n int, o ServerOptions) *Cluster {
	t.Helper()
	leakcheck.Check(t)
	bin := BuildBinary(t)
	cl := &Cluster{t: t}
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "tahoma-e2e-proc")
		if err != nil {
			t.Fatalf("%v", err)
		}
		t.Cleanup(func() { os.RemoveAll(dir) })
		storeDir := filepath.Join(dir, "store")
		if err := copyDir(fx.StoreDir, storeDir); err != nil {
			t.Fatalf("copying store: %v", err)
		}
		args := []string{"serve",
			"-addr", "127.0.0.1:0",
			"-zoo", fx.ZooDir,
			"-corpus", storeDir,
			"-scenario", "camera",
		}
		if o.Fault != "" {
			args = append(args, "-fault", o.Fault)
		}
		if o.ServeReps {
			args = append(args, "-serve-reps")
		}
		if o.Trigger {
			args = append(args, "-trigger")
		}
		if o.Durable {
			args = append(args, "-wal-dir", filepath.Join(dir, "wal"))
			if o.CheckpointEvery > 0 {
				args = append(args, "-checkpoint-every", o.CheckpointEvery.String())
			}
		}
		if o.Materialize != "" {
			args = append(args, "-materialize", o.Materialize)
		}
		if o.Quantize != "" {
			args = append(args, "-quantize", o.Quantize)
		}
		if o.MaxQueue != 0 {
			args = append(args, "-max-queue", strconv.Itoa(o.MaxQueue))
		}
		args = append(args, o.ExtraArgs...)
		cl.Procs = append(cl.Procs, StartProc(t, bin, args))
	}
	// Graceful teardown, registered after the procs' kill cleanups so it
	// runs before them (LIFO): every process must drain and exit 0.
	t.Cleanup(func() {
		for i, p := range cl.Procs {
			if err := p.GracefulStop(60 * time.Second); err != nil {
				t.Errorf("proc %d: %v", i, err)
			}
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i, p := range cl.Procs {
		if err := p.Client.WaitReady(ctx); err != nil {
			t.Fatalf("proc %d never became ready: %v\n%s", i, err, p.Dump())
		}
	}
	return cl
}

// Clients returns the per-process clients, in process order.
func (cl *Cluster) Clients() []*server.Client {
	out := make([]*server.Client, len(cl.Procs))
	for i, p := range cl.Procs {
		out[i] = p.Client
	}
	return out
}

// Stats fetches /stats from every process.
func (cl *Cluster) Stats() ([]*server.StatsResponse, error) {
	out := make([]*server.StatsResponse, len(cl.Procs))
	for i, p := range cl.Procs {
		st, err := p.Client.Stats()
		if err != nil {
			return nil, fmt.Errorf("proc %d stats: %w", i, err)
		}
		out[i] = st
	}
	return out, nil
}

// CopyDir copies a flat artifact directory (a fixture store, a journal) into
// dst, failing t on error — for tests that manage their own process layout
// on top of StartProc.
func CopyDir(t TB, src, dst string) {
	t.Helper()
	if err := copyDir(src, dst); err != nil {
		t.Fatalf("copying %s: %v", src, err)
	}
}

func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ArtifactsEnv names the directory failure artifacts are written into (the
// CI job uploads it); unset, artifacts go to a fresh temp directory whose
// path is logged.
const ArtifactsEnv = "TAHOMA_E2E_ARTIFACTS"

// WriteFailureArtifacts dumps everything needed to replay a failure offline:
// the trace, canonical got/want bytes per mismatched op, each process's
// /stats and captured stderr. Best-effort — artifact errors are logged, the
// test failure stands on its own.
func WriteFailureArtifacts(t TB, name string, tr *Trace, rep *ReplayReport, want [][]byte, cl *Cluster) {
	t.Helper()
	root := os.Getenv(ArtifactsEnv)
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "tahoma-e2e-artifacts")
		if err != nil {
			t.Logf("artifacts: %v", err)
			return
		}
	}
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	if blob, err := MarshalTrace(tr); err == nil {
		writeArtifact(t, dir, "trace.json", blob)
	}
	if rep != nil {
		for i, r := range rep.Results {
			if want != nil && i < len(want) && string(want[i]) == string(r.Canon) {
				continue
			}
			writeArtifact(t, dir, fmt.Sprintf("op_%03d_got.json", i), r.Canon)
			if want != nil && i < len(want) {
				writeArtifact(t, dir, fmt.Sprintf("op_%03d_want.json", i), want[i])
			}
		}
	}
	if cl != nil {
		for i, p := range cl.Procs {
			if st, err := p.Client.Stats(); err == nil {
				if blob, err := json.MarshalIndent(st, "", "  "); err == nil {
					writeArtifact(t, dir, fmt.Sprintf("stats_%d.json", i), blob)
				}
			}
			writeArtifact(t, dir, fmt.Sprintf("serve_%d.log", i), []byte(p.Dump()))
		}
	}
	t.Logf("failure artifacts written to %s", dir)
}

func writeArtifact(t TB, dir, name string, blob []byte) {
	if err := os.WriteFile(filepath.Join(dir, name), blob, 0o644); err != nil {
		t.Logf("artifacts: %s: %v", name, err)
	}
}
