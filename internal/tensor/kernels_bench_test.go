package tensor

// Kernel micro-benchmarks for the batched inference path. The shapes are the
// conv GEMMs the nn package actually produces: A is the [OutC, InC·K²]
// weight matrix, B is the im2col column matrix whose width scales with the
// batch size.
//
//	go test -run=NONE -bench='MatMul|Im2ColBatch' -benchmem ./internal/tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchGemmShapes() [][3]int {
	// [m, k, n(B=1)]: conv1 at 32x32 RGB, conv2 at 16x16, dense over a
	// flattened 8x8x16 activation.
	return [][3]int{
		{16, 27, 1024},
		{16, 144, 256},
		{32, 1024, 1},
	}
}

// BenchmarkMatMul compares the seed's naive i,k,j kernel against the blocked
// register-tiled Gemm at conv-shaped sizes, at single-sample and batched
// column widths.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	for _, sh := range benchGemmShapes() {
		for _, batch := range []int{1, 64} {
			m, k, n := sh[0], sh[1], sh[2]*batch
			a := randTensor(rng, m, k)
			bm := randTensor(rng, k, n)
			c := New(m, n)
			flops := 2 * int64(m) * int64(k) * int64(n)
			b.Run(fmt.Sprintf("naive/m=%d/k=%d/n=%d", m, k, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					MatMul(c, a, bm)
				}
				b.SetBytes(flops)
			})
			b.Run(fmt.Sprintf("blocked/m=%d/k=%d/n=%d", m, k, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					Gemm(c, a, bm)
				}
				b.SetBytes(flops)
			})
		}
	}
}

// BenchmarkIm2ColBatch measures the batched unroll against B single-sample
// unrolls for a 3x3/pad-1 conv over 32x32 RGB.
func BenchmarkIm2ColBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	g := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	for _, bsz := range []int{1, 8, 64} {
		x := randTensor(rng, g.InC, bsz, g.InH, g.InW)
		col := New(g.ColRows(), bsz*g.ColCols())
		b.Run(fmt.Sprintf("batched/b=%d", bsz), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Im2ColBatch(col, x, g)
			}
			b.ReportMetric(float64(b.N*bsz)/b.Elapsed().Seconds(), "samples/sec")
		})
	}
	x1 := randTensor(rng, g.InC, g.InH, g.InW)
	col1 := New(g.ColRows(), g.ColCols())
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Im2Col(col1, x1, g)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
	})
}
