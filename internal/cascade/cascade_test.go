package cascade

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tahoma/internal/arch"
	"tahoma/internal/img"
	"tahoma/internal/model"
	"tahoma/internal/scenario"
	"tahoma/internal/thresh"
	"tahoma/internal/xform"
)

// fixture builds a small evaluator with synthetic scores: nModels models
// (every pair of distinct transforms among a few), nThresh threshold sets,
// nEval images.
type fixture struct {
	models []*model.Model
	scores [][]float32
	ths    [][]thresh.Thresholds
	truth  []bool
	ev     *Evaluator
}

func newFixture(t *testing.T, seed int64, nModels, nThresh, nEval int) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xfs := []xform.Transform{
		{Size: 8, Color: img.Gray},
		{Size: 8, Color: img.RGB},
		{Size: 16, Color: img.Gray},
		{Size: 16, Color: img.RGB},
	}
	spec := arch.Spec{ConvLayers: 1, ConvWidth: 2, DenseWidth: 2, Kernel: 3}
	f := &fixture{}
	for i := 0; i < nModels; i++ {
		m, err := model.New(spec, xfs[i%len(xfs)], model.Basic, seed+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		f.models = append(f.models, m)
	}
	f.truth = make([]bool, nEval)
	for i := range f.truth {
		f.truth[i] = rng.Intn(2) == 0
	}
	f.scores = make([][]float32, nModels)
	f.ths = make([][]thresh.Thresholds, nModels)
	for m := 0; m < nModels; m++ {
		f.scores[m] = make([]float32, nEval)
		for i := range f.scores[m] {
			// Scores loosely correlated with truth so cascades are
			// non-trivial.
			base := 0.3
			if f.truth[i] {
				base = 0.7
			}
			f.scores[m][i] = float32(base) + 0.5*(rng.Float32()-0.5)
		}
		for j := 0; j < nThresh; j++ {
			lo := 0.15 + 0.1*rng.Float32()
			hi := 0.65 + 0.2*rng.Float32()
			f.ths[m] = append(f.ths[m], thresh.Thresholds{Low: lo, High: hi})
		}
	}
	ev, err := NewEvaluator(f.models, f.scores, f.ths, f.truth)
	if err != nil {
		t.Fatal(err)
	}
	f.ev = ev
	return f
}

// naiveEvaluate re-implements cascade semantics per image with explicit
// loops and maps — the reference the bitset simulator must match.
func naiveEvaluate(f *fixture, s Spec, ct *CostTable) (accuracy, avgCost float64) {
	n := len(f.truth)
	correct := 0
	var cost float64
	for i := 0; i < n; i++ {
		cost += ct.Source
		seen := make(map[int32]bool)
		for k := int32(0); k < s.Depth; k++ {
			ref := s.L[k]
			cost += ct.Infer[ref.Model]
			rid := ct.RepIdx[ref.Model]
			if !seen[rid] {
				seen[rid] = true
				cost += ct.Rep[ref.Model]
			}
			score := f.scores[ref.Model][i]
			if ref.Thresh == Final {
				if (score >= 0.5) == f.truth[i] {
					correct++
				}
				break
			}
			decided, positive := f.ths[ref.Model][ref.Thresh].Decide(score)
			if decided {
				if positive == f.truth[i] {
					correct++
				}
				break
			}
		}
	}
	return float64(correct) / float64(n), cost / float64(n)
}

func randSpec(rng *rand.Rand, nModels, nThresh int) Spec {
	depth := 1 + rng.Intn(3)
	var s Spec
	s.Depth = int32(depth)
	for k := 0; k < depth; k++ {
		s.L[k] = LevelRef{Model: int32(rng.Intn(nModels)), Thresh: int32(rng.Intn(nThresh))}
	}
	s.L[depth-1].Thresh = Final
	return s
}

// TestEvaluatorMatchesNaive is the core correctness test: the bitset
// simulator must agree exactly with the per-image reference on accuracy and
// cost, for random cascades under random cost tables.
func TestEvaluatorMatchesNaive(t *testing.T) {
	f := newFixture(t, 42, 6, 3, 257) // non-multiple of 64 to stress tail bits
	cm, err := scenario.NewAnalytic(scenario.Archive, scenario.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ct := f.ev.CompileCosts(cm)
	rng := rand.New(rand.NewSource(7))
	scratch := f.ev.NewScratch()
	for trial := 0; trial < 300; trial++ {
		s := randSpec(rng, len(f.models), 3)
		got := f.ev.Evaluate(s, ct, scratch)
		wantAcc, wantCost := naiveEvaluate(f, s, ct)
		if math.Abs(got.Accuracy-wantAcc) > 1e-12 {
			t.Fatalf("trial %d (%s): accuracy %v, want %v", trial, s.ID(), got.Accuracy, wantAcc)
		}
		if math.Abs(got.AvgCost-wantCost) > 1e-9*math.Max(1, wantCost) {
			t.Fatalf("trial %d (%s): cost %v, want %v", trial, s.ID(), got.AvgCost, wantCost)
		}
	}
}

// TestEvaluatorMatchesNaiveQuick repeats the comparison across random
// fixtures via testing/quick.
func TestEvaluatorMatchesNaiveQuick(t *testing.T) {
	q := func(seed int64) bool {
		u := seed
		if u < 0 {
			u = -u
		}
		f := newFixture(t, seed, 3+int(u%4), 2, 50+int(u%97))
		cm, err := scenario.NewAnalytic(scenario.Ongoing, scenario.DefaultParams())
		if err != nil {
			return false
		}
		ct := f.ev.CompileCosts(cm)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		scratch := f.ev.NewScratch()
		for trial := 0; trial < 20; trial++ {
			s := randSpec(rng, len(f.models), 2)
			got := f.ev.Evaluate(s, ct, scratch)
			wantAcc, wantCost := naiveEvaluate(f, s, ct)
			if math.Abs(got.Accuracy-wantAcc) > 1e-12 ||
				math.Abs(got.AvgCost-wantCost) > 1e-9*math.Max(1, wantCost) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(q, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestRepCostDedup: two levels sharing a transform must charge its creation
// once; distinct transforms charge twice.
func TestRepCostDedup(t *testing.T) {
	f := newFixture(t, 1, 4, 1, 64)
	// Models 0 and 4%len share transform... use models 0 and 0: same model
	// twice shares trivially; models 0 (8/gray) and 2 (16/gray) differ.
	cm, err := scenario.NewAnalytic(scenario.Camera, scenario.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ct := f.ev.CompileCosts(cm)
	scratch := f.ev.NewScratch()

	// Force "never decide" thresholds so level 1 always falls through.
	f.ths[0][0] = thresh.Thresholds{Low: -1, High: 2}
	ev2, err := NewEvaluator(f.models, f.scores, f.ths, f.truth)
	if err != nil {
		t.Fatal(err)
	}
	ct2 := ev2.CompileCosts(cm)

	sameRep := Spec{Depth: 2, L: [MaxLevels]LevelRef{
		{Model: 0, Thresh: 0}, {Model: 0, Thresh: Final}}}
	diffRep := Spec{Depth: 2, L: [MaxLevels]LevelRef{
		{Model: 0, Thresh: 0}, {Model: 2, Thresh: Final}}}

	same := ev2.Evaluate(sameRep, ct2, scratch)
	diff := ev2.Evaluate(diffRep, ct2, scratch)
	// Same model at both levels: rep cost once, infer twice.
	wantSame := 2*ct.Infer[0] + ct.Rep[0]
	if math.Abs(same.AvgCost-wantSame) > 1e-12 {
		t.Fatalf("shared-rep cost %v, want %v", same.AvgCost, wantSame)
	}
	wantDiff := ct.Infer[0] + ct.Infer[2] + ct.Rep[0] + ct.Rep[2]
	if math.Abs(diff.AvgCost-wantDiff) > 1e-12 {
		t.Fatalf("distinct-rep cost %v, want %v", diff.AvgCost, wantDiff)
	}
}

// TestCascadeOfOneEqualsModel: a single-level cascade's accuracy equals the
// model's plain 0.5-cutoff accuracy.
func TestCascadeOfOneEqualsModel(t *testing.T) {
	f := newFixture(t, 3, 3, 2, 129)
	cm, _ := scenario.NewAnalytic(scenario.InferOnly, scenario.DefaultParams())
	ct := f.ev.CompileCosts(cm)
	scratch := f.ev.NewScratch()
	for m := range f.models {
		s := Spec{Depth: 1, L: [MaxLevels]LevelRef{{Model: int32(m), Thresh: Final}}}
		got := f.ev.Evaluate(s, ct, scratch)
		correct := 0
		for i, sc := range f.scores[m] {
			if (sc >= 0.5) == f.truth[i] {
				correct++
			}
		}
		want := float64(correct) / float64(len(f.truth))
		if got.Accuracy != want {
			t.Fatalf("model %d: cascade acc %v != model acc %v", m, got.Accuracy, want)
		}
	}
}

func TestBuilderCountMatchesEnumeration(t *testing.T) {
	opts := BuildOptions{
		LevelModels: []int{0, 1, 2},
		FinalModels: []int{0, 1, 2, 3},
		NumThresh:   2,
		MaxDepth:    2,
		AppendDeep:  true,
		DeepModel:   3,
	}
	want, err := Count(opts)
	if err != nil {
		t.Fatal(err)
	}
	// depth1: 4; depth2: 3*2*4=24. The deep model (3) is already a final
	// candidate, so AppendDeep only adds the otherwise-unreachable
	// depth-2-prefix variants: (3*2)^2=36 → 4+24+36 = 64.
	if want != 64 {
		t.Fatalf("Count = %d, want 64", want)
	}
	var got []Spec
	if err := ForEach(opts, func(s Spec) { got = append(got, s) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("enumerated %d, counted %d", len(got), want)
	}
	seen := make(map[string]bool)
	for _, s := range got {
		if err := s.Validate(4, 2); err != nil {
			t.Fatalf("invalid spec %s: %v", s.ID(), err)
		}
		id := s.ID()
		if seen[id] {
			t.Fatalf("duplicate spec %s", id)
		}
		seen[id] = true
	}
}

func TestBuilderLimit(t *testing.T) {
	opts := BuildOptions{
		LevelModels: []int{0, 1}, FinalModels: []int{0, 1},
		NumThresh: 2, MaxDepth: 3, Limit: 5,
	}
	if _, err := Build(opts); err == nil {
		t.Fatal("expected limit error")
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := Count(BuildOptions{MaxDepth: 1}); err == nil {
		t.Fatal("no final models must error")
	}
	if _, err := Count(BuildOptions{FinalModels: []int{0}, MaxDepth: 9}); err == nil {
		t.Fatal("excess depth must error")
	}
	if _, err := Count(BuildOptions{FinalModels: []int{0}, LevelModels: []int{0}, MaxDepth: 2}); err == nil {
		t.Fatal("multi-level without thresholds must error")
	}
	if _, err := Count(BuildOptions{FinalModels: []int{0}, MaxDepth: 1, AppendDeep: true, DeepModel: -1}); err == nil {
		t.Fatal("AppendDeep without DeepModel must error")
	}
}

func TestEvaluateAllParallelMatchesSerial(t *testing.T) {
	f := newFixture(t, 11, 5, 2, 200)
	cm, _ := scenario.NewAnalytic(scenario.Camera, scenario.DefaultParams())
	ct := f.ev.CompileCosts(cm)
	opts := BuildOptions{
		LevelModels: []int{0, 1, 2, 3},
		FinalModels: []int{0, 1, 2, 3, 4},
		NumThresh:   2,
		MaxDepth:    2,
	}
	specs, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	serial := f.ev.EvaluateAll(specs, ct, 1)
	parallel := f.ev.EvaluateAll(specs, ct, 4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("spec %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

func TestSpecValidate(t *testing.T) {
	ok := Spec{Depth: 2, L: [MaxLevels]LevelRef{{Model: 0, Thresh: 0}, {Model: 1, Thresh: Final}}}
	if err := ok.Validate(2, 1); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Depth: 0},
		{Depth: 1, L: [MaxLevels]LevelRef{{Model: 5, Thresh: Final}}},
		{Depth: 1, L: [MaxLevels]LevelRef{{Model: 0, Thresh: 0}}},                             // last not Final
		{Depth: 2, L: [MaxLevels]LevelRef{{Model: 0, Thresh: 3}, {Model: 0, Thresh: Final}}},  // thresh out of range
		{Depth: 2, L: [MaxLevels]LevelRef{{Model: 0, Thresh: -1}, {Model: 0, Thresh: Final}}}, // Final mid-cascade
	}
	for i, s := range bad {
		if err := s.Validate(2, 1); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestSpecID(t *testing.T) {
	s := Spec{Depth: 2, L: [MaxLevels]LevelRef{{Model: 3, Thresh: 1}, {Model: 7, Thresh: Final}}}
	if s.ID() != "m3.t1|m7.F" {
		t.Fatalf("ID = %s", s.ID())
	}
}

func TestOccupancy(t *testing.T) {
	f := newFixture(t, 51, 4, 2, 128)
	spec := Spec{Depth: 3, L: [MaxLevels]LevelRef{
		{Model: 0, Thresh: 0}, {Model: 1, Thresh: 1}, {Model: 2, Thresh: Final}}}
	stats, err := f.ev.Occupancy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("got %d levels", len(stats))
	}
	if stats[0].Reached != 128 {
		t.Fatalf("level 0 reached %d, want 128", stats[0].Reached)
	}
	// Reach counts are nested; each level's reached = previous undecided.
	for k := 1; k < 3; k++ {
		want := stats[k-1].Reached - stats[k-1].Decided
		if stats[k].Reached != want {
			t.Fatalf("level %d reached %d, want %d", k, stats[k].Reached, want)
		}
	}
	// The final level decides everything that reaches it.
	if stats[2].Decided != stats[2].Reached {
		t.Fatal("final level must decide all")
	}
	// Total decided must cover the whole eval set.
	total := 0
	for _, s := range stats {
		total += s.Decided
	}
	if total != 128 {
		t.Fatalf("decided %d of 128", total)
	}
	if stats[0].String() == "" {
		t.Fatal("empty stats string")
	}
	// Invalid specs are rejected.
	if _, err := f.ev.Occupancy(Spec{Depth: 0}); err == nil {
		t.Fatal("invalid spec must error")
	}
}
