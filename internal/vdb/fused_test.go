package vdb

import (
	"strings"
	"sync"
	"testing"

	"tahoma/internal/core"
	"tahoma/internal/img"
	"tahoma/internal/repstore"
	"tahoma/internal/scenario"
	"tahoma/internal/synth"
	"tahoma/internal/xform"
)

// Trained systems are cached across the fused tests: initialization is the
// expensive part and the systems are stateless for classification.
var (
	fusedOnce   sync.Once
	fusedErr    error
	cloakSys    *core.System
	cohoSys     *core.System
	fusedImages []*img.Image
	fusedMeta   []Metadata
)

func fusedFixture(t *testing.T) {
	t.Helper()
	fusedOnce.Do(func() {
		train := func(category string) (*core.System, synth.Splits, error) {
			cat, err := synth.CategoryByName(category)
			if err != nil {
				return nil, synth.Splits{}, err
			}
			splits, err := synth.GenerateBinary(cat, synth.Options{
				BaseSize: 16, TrainN: 120, ConfigN: 40, EvalN: 40, Seed: 7,
			})
			if err != nil {
				return nil, synth.Splits{}, err
			}
			sys, err := core.Initialize(category, splits, core.TinyConfig())
			return sys, splits, err
		}
		var splits synth.Splits
		if cloakSys, splits, fusedErr = train("cloak"); fusedErr != nil {
			return
		}
		if cohoSys, _, fusedErr = train("coho"); fusedErr != nil {
			return
		}
		locations := []string{"uptown", "downtown"}
		for i, e := range splits.Eval.Examples {
			fusedImages = append(fusedImages, e.Image)
			fusedMeta = append(fusedMeta, Metadata{
				ID: int64(i), Location: locations[i%2], Camera: "cam-1", TS: int64(i * 10),
			})
		}
	})
	if fusedErr != nil {
		t.Fatal(fusedErr)
	}
}

// buildFusedDB assembles a fresh DB over the shared corpus with the cloak
// system installed under two categories (fully-overlapping rep grids) and
// the coho system as a third, independent predicate.
func buildFusedDB(t *testing.T) *DB {
	t.Helper()
	fusedFixture(t)
	cm, err := scenario.NewAnalytic(scenario.Camera, scenario.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	db := New(cm)
	if err := db.LoadCorpus(fusedImages, fusedMeta); err != nil {
		t.Fatal(err)
	}
	for _, in := range []struct {
		cat string
		sys *core.System
	}{{"cloak", cloakSys}, {"cloak2", cloakSys}, {"coho", cohoSys}} {
		if err := db.InstallPredicate(in.cat, in.sys, 2); err != nil {
			t.Fatal(err)
		}
	}
	// These tests pin the fused executor (labels, need masks, rep
	// accounting), not the planner's cost decision — the tiny fixture is
	// inference-dominated, where the cost model legitimately prefers
	// sequential narrowing. The legacy slot-sharing gate forces the path
	// under test; TestFusionCostDecision covers the default policy.
	db.SetPlanOptions(PlanOptions{Fusion: FusionShared})
	return db
}

func rowSet(t *testing.T, res *Result) map[int64]bool {
	t.Helper()
	out := make(map[int64]bool, len(res.Rows))
	for _, row := range res.Rows {
		out[row[0].Int] = true
	}
	return out
}

// TestFusedQueryMatchesSequential: a two-predicate query returns identical
// rows fused and sequential, the fused run classifies every live row for
// every predicate in one pass (filling both columns), and — with
// fully-overlapping rep grids — materializes exactly the representations a
// single-predicate full scan would, not twice that.
func TestFusedQueryMatchesSequential(t *testing.T) {
	cons := core.Constraints{MaxAccuracyLoss: 0.05}
	sql := "SELECT id FROM images WHERE contains_object('cloak') AND contains_object('cloak2')"

	single, err := buildFusedDB(t).Query("SELECT id FROM images WHERE contains_object('cloak')", cons)
	if err != nil {
		t.Fatal(err)
	}

	dbF := buildFusedDB(t)
	resF, err := dbF.Query(sql, cons)
	if err != nil {
		t.Fatal(err)
	}
	dbS := buildFusedDB(t)
	dbS.SetFusion(false)
	resS, err := dbS.Query(sql, cons)
	if err != nil {
		t.Fatal(err)
	}

	if !resF.Fused {
		t.Fatal("two pending predicates should take the fused path")
	}
	if resS.Fused {
		t.Fatal("SetFusion(false) must keep the sequential path")
	}
	if resF.Count != resS.Count {
		t.Fatalf("fused %d rows, sequential %d", resF.Count, resS.Count)
	}
	fRows, sRows := rowSet(t, resF), rowSet(t, resS)
	for id := range fRows {
		if !sRows[id] {
			t.Fatalf("row %d only in fused result", id)
		}
	}
	// Fused classifies all 40 rows under both predicates at once; the
	// sequential path narrows, paying 40 + survivors.
	if resF.UDFCalls != 80 {
		t.Fatalf("fused UDF calls = %d, want 80", resF.UDFCalls)
	}
	if resS.UDFCalls != 40+resS.Count {
		t.Fatalf("sequential UDF calls = %d, want %d", resS.UDFCalls, 40+resS.Count)
	}
	// Exactly-once materialization: both cascades are the same spec, so the
	// fused two-predicate scan transforms no more than one predicate's
	// full scan does.
	if resF.RepsMaterialized != single.RepsMaterialized {
		t.Fatalf("fused 2-predicate scan materialized %d reps, single-predicate scan %d",
			resF.RepsMaterialized, single.RepsMaterialized)
	}
	// Both columns are now fully materialized: repeats are free.
	again, err := dbF.Query(sql, cons)
	if err != nil {
		t.Fatal(err)
	}
	if again.UDFCalls != 0 || again.Fused {
		t.Fatalf("repeat query: %d UDF calls (fused=%v), want 0 cached", again.UDFCalls, again.Fused)
	}
	if again.Count != resF.Count {
		t.Fatal("cached repeat disagrees with fused run")
	}
}

// TestFusedDistinctSystems: fusing predicates from different systems (cloak
// + coho) returns the same rows as sequential execution at every engine
// sizing, including through the async ingest pipeline.
func TestFusedDistinctSystems(t *testing.T) {
	cons := core.Constraints{MaxAccuracyLoss: 0.05}
	sql := "SELECT id FROM images WHERE contains_object('cloak') AND contains_object('coho')"
	dbS := buildFusedDB(t)
	dbS.SetFusion(false)
	resS, err := dbS.Query(sql, cons)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []struct {
		workers, batch, prefetch int
	}{{1, 1, 0}, {4, 3, 0}, {2, 64, 0}, {2, 8, -1}, {1, 4, 3}} {
		db := buildFusedDB(t)
		opts := db.execOpts
		opts.Workers, opts.Batch, opts.Prefetch = o.workers, o.batch, o.prefetch
		db.SetExecOptions(opts)
		res, err := db.Query(sql, cons)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Fused {
			t.Fatalf("opts %+v: fused path not taken", o)
		}
		if res.Count != resS.Count {
			t.Fatalf("opts %+v: fused %d rows, sequential %d", o, res.Count, resS.Count)
		}
		sRows, rRows := rowSet(t, resS), rowSet(t, res)
		for id := range rRows {
			if !sRows[id] {
				t.Fatalf("opts %+v: row %d only in fused result", o, id)
			}
		}
	}
}

// TestFusedPartialCoverage: a predicate with rows cached by an earlier
// filtered query must not re-classify them inside the fused pass — the need
// masks carry per-predicate coverage.
func TestFusedPartialCoverage(t *testing.T) {
	cons := core.Constraints{MaxAccuracyLoss: 0.05}
	db := buildFusedDB(t)
	// Prime cloak's column for the 20 uptown rows.
	first, err := db.Query("SELECT id FROM images WHERE location = 'uptown' AND contains_object('cloak')", cons)
	if err != nil {
		t.Fatal(err)
	}
	if first.UDFCalls != 20 {
		t.Fatalf("priming query ran %d classifications, want 20", first.UDFCalls)
	}
	// The fused two-predicate scan now owes cloak 20 rows and coho 40.
	res, err := db.Query("SELECT id FROM images WHERE contains_object('cloak') AND contains_object('coho')", cons)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fused {
		t.Fatal("fused path not taken")
	}
	if res.UDFCalls != 60 {
		t.Fatalf("fused pass ran %d classifications, want 60 (20 cloak + 40 coho)", res.UDFCalls)
	}
	// Same rows as a sequential run on a fresh DB.
	dbS := buildFusedDB(t)
	dbS.SetFusion(false)
	resS, err := dbS.Query("SELECT id FROM images WHERE contains_object('cloak') AND contains_object('coho')", cons)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != resS.Count {
		t.Fatalf("fused-after-priming %d rows, sequential %d", res.Count, resS.Count)
	}
}

// TestServeRepsFromStore: with a store-backed corpus materializing the
// design grid and ServeReps on, content predicates load stored
// representations instead of transforming decoded sources — zero transforms,
// cache stats on the result — and repeated queries agree.
func TestServeRepsFromStore(t *testing.T) {
	fusedFixture(t)
	grid := xform.Grid([]int{8, 16}, []img.ColorMode{img.RGB, img.Gray})
	store, err := repstore.Create(t.TempDir(), 16, 16, grid)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.IngestAll(fusedImages); err != nil {
		t.Fatal(err)
	}
	params := scenario.DefaultParams()
	params.SourceW, params.SourceH = 16, 16
	cm, err := scenario.NewAnalytic(scenario.Archive, params)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *DB {
		db := New(cm)
		if err := db.LoadCorpusFromStore(store, 1<<20, fusedMeta); err != nil {
			t.Fatal(err)
		}
		for _, in := range []struct {
			cat string
			sys *core.System
		}{{"cloak", cloakSys}, {"coho", cohoSys}} {
			if err := db.InstallPredicate(in.cat, in.sys, 2); err != nil {
				t.Fatal(err)
			}
		}
		db.ServeReps(true)
		// With every slot served, there is no rep work left to share, so
		// the cost model prefers narrowing; the gate policy keeps this
		// test on the fused path it exercises.
		db.SetPlanOptions(PlanOptions{Fusion: FusionShared})
		return db
	}
	cons := core.Constraints{MaxAccuracyLoss: 0.05}
	sql := "SELECT id FROM images WHERE contains_object('cloak') AND contains_object('coho')"
	db := build()
	res, err := db.Query(sql, cons)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fused {
		t.Fatal("fused path not taken")
	}
	if res.RepsMaterialized != 0 {
		t.Fatalf("store covers the whole grid, yet %d transforms ran", res.RepsMaterialized)
	}
	if res.RepHits == 0 {
		t.Fatal("no representations served from the store")
	}
	if !res.HasRepCache {
		t.Fatal("rep cache stats missing from the result")
	}
	if res.RepCache.Hits+res.RepCache.Misses == 0 {
		t.Fatal("rep cache saw no traffic")
	}
	// Deterministic: a second DB over the same store returns the same rows.
	res2, err := build().Query(sql, cons)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count != res.Count {
		t.Fatalf("served query not deterministic: %d vs %d rows", res2.Count, res.Count)
	}
	a, b := rowSet(t, res), rowSet(t, res2)
	for id := range a {
		if !b[id] {
			t.Fatalf("row %d only in first served result", id)
		}
	}
}

// TestFusedDisjointGridsFallBack: when the planned cascades share no
// representation slot there is nothing for fusion to amortize, so the
// content phase keeps the sequential path (and its predicate narrowing),
// and EXPLAIN does not advertise fusion.
func TestFusedDisjointGridsFallBack(t *testing.T) {
	fusedFixture(t)
	// A design space entirely over the red channel: disjoint from the
	// TinyConfig rgb/gray grid whatever cascade the planner picks.
	cfg := core.TinyConfig()
	cfg.Sizes = []int{8}
	cfg.Colors = []img.ColorMode{img.Red}
	cfg.DeepXform = xform.Transform{Size: 8, Color: img.Red}
	cat, err := synth.CategoryByName("coho")
	if err != nil {
		t.Fatal(err)
	}
	splits, err := synth.GenerateBinary(cat, synth.Options{
		BaseSize: 16, TrainN: 60, ConfigN: 30, EvalN: 30, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	redSys, err := core.Initialize("redcoho", splits, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := scenario.NewAnalytic(scenario.Camera, scenario.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	db := New(cm)
	if err := db.LoadCorpus(fusedImages, fusedMeta); err != nil {
		t.Fatal(err)
	}
	if err := db.InstallPredicate("cloak", cloakSys, 2); err != nil {
		t.Fatal(err)
	}
	if err := db.InstallPredicate("redcoho", redSys, 2); err != nil {
		t.Fatal(err)
	}
	cons := core.Constraints{MaxAccuracyLoss: 0.05}
	sql := "SELECT id FROM images WHERE contains_object('cloak') AND contains_object('redcoho')"
	out, err := db.Explain(sql, cons)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Fused:") {
		t.Fatalf("explain advertises fusion for disjoint grids:\n%s", out)
	}
	res, err := db.Query(sql, cons)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fused {
		t.Fatal("disjoint rep grids must fall back to sequential narrowing")
	}
	// Narrowing held: the second predicate only classified the first's
	// survivors.
	if res.UDFCalls > 80 {
		t.Fatalf("sequential fallback ran %d classifications over 40 rows × 2 predicates", res.UDFCalls)
	}
	// A duplicate mention of the first predicate must not manufacture slot
	// sharing: the gate sees two distinct pending columns on disjoint
	// grids, not the duplicate's trivial self-overlap.
	res3, err := db.Query(
		"SELECT id FROM images WHERE contains_object('cloak') AND NOT contains_object('cloak') AND contains_object('redcoho')", cons)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Fused {
		t.Fatal("duplicate predicate mention must not flip the disjoint-grid gate")
	}
	if res3.Count != 0 {
		t.Fatalf("X AND NOT X AND Y returned %d rows", res3.Count)
	}
}

// TestFusedDuplicatePredicate: referencing the same predicate twice (the
// degenerate X AND NOT X) must classify each row once, not once per
// mention, fused or not.
func TestFusedDuplicatePredicate(t *testing.T) {
	cons := core.Constraints{MaxAccuracyLoss: 0.05}
	sql := "SELECT id FROM images WHERE contains_object('cloak') AND NOT contains_object('cloak')"
	db := buildFusedDB(t)
	res, err := db.Query(sql, cons)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("X AND NOT X returned %d rows", res.Count)
	}
	if res.UDFCalls != 40 {
		t.Fatalf("duplicate predicate ran %d classifications, want 40", res.UDFCalls)
	}
	// Three mentions where two share a column still fuse — and the shared
	// column is classified once.
	db2 := buildFusedDB(t)
	res2, err := db2.Query(
		"SELECT id FROM images WHERE contains_object('cloak') AND NOT contains_object('cloak') AND contains_object('coho')", cons)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Fused {
		t.Fatal("two distinct pending columns should take the fused path")
	}
	if res2.UDFCalls != 80 {
		t.Fatalf("duplicate-plus-distinct ran %d classifications, want 80", res2.UDFCalls)
	}
	if res2.Count != 0 {
		t.Fatalf("X AND NOT X AND Y returned %d rows", res2.Count)
	}
}

// TestExplainFused: EXPLAIN advertises the fused content phase.
func TestExplainFused(t *testing.T) {
	db := buildFusedDB(t)
	cons := core.Constraints{MaxAccuracyLoss: 0.05}
	out, err := db.Explain("SELECT id FROM images WHERE contains_object('cloak') AND contains_object('coho')", cons)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fused: 2 content predicates") {
		t.Fatalf("explain missing fused line:\n%s", out)
	}
	db.SetFusion(false)
	out, err = db.Explain("SELECT id FROM images WHERE contains_object('cloak') AND contains_object('coho')", cons)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Fused:") {
		t.Fatalf("explain shows fused line with fusion off:\n%s", out)
	}
}
