package vdb

import (
	"strings"
	"testing"

	"tahoma/internal/core"
	"tahoma/internal/exec"
)

// TestQueryQuantParity: the same content query under QuantOff and QuantAuto
// returns identical rows (the parity wall holds through the whole DB stack),
// and the auto run reports its int8 accounting on the Result and in the
// DB's cumulative counters.
func TestQueryQuantParity(t *testing.T) {
	db, _ := buildTestDB(t)
	// Materialization off so both runs actually classify instead of the
	// second one reading the first one's bitmap.
	db.SetMaterialization(MatOff)
	cons := core.Constraints{MaxAccuracyLoss: 0.05}
	sql := "SELECT id FROM images WHERE contains_object('cloak')"

	db.SetQuantization(exec.QuantOff)
	off, err := db.Query(sql, cons)
	if err != nil {
		t.Fatal(err)
	}
	if off.QuantScored != 0 || off.QuantFallbacks != 0 {
		t.Fatalf("QuantOff query counted int8 work: %d/%d", off.QuantScored, off.QuantFallbacks)
	}
	if u := db.QuantUsage(); u.Scored != 0 || u.Fallbacks != 0 {
		t.Fatalf("QuantOff query moved cumulative counters: %+v", u)
	}

	db.SetQuantization(exec.QuantAuto)
	auto, err := db.Query(sql, cons)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Count != off.Count || len(auto.Rows) != len(off.Rows) {
		t.Fatalf("row counts differ: auto %d, off %d", auto.Count, off.Count)
	}
	for i := range off.Rows {
		if auto.Rows[i][0].Int != off.Rows[i][0].Int {
			t.Fatalf("row %d: auto id %d, off id %d", i, auto.Rows[i][0].Int, off.Rows[i][0].Int)
		}
	}
	if auto.QuantScored == 0 {
		t.Fatal("QuantAuto query never trusted an int8 score — quantization is not engaged")
	}
	u := db.QuantUsage()
	if u.Scored != int64(auto.QuantScored) || u.Fallbacks != int64(auto.QuantFallbacks) {
		t.Fatalf("cumulative counters %+v, query reported %d/%d", u, auto.QuantScored, auto.QuantFallbacks)
	}
}

// TestExplainQuant: EXPLAIN prints the int8 levels and the guard band
// exactly when the DB will run quantized, and drops them under QuantOff.
func TestExplainQuant(t *testing.T) {
	db, _ := buildTestDB(t)
	cons := core.Constraints{MaxAccuracyLoss: 0.05}
	sql := "SELECT id FROM images WHERE contains_object('cloak')"

	plan, err := db.Explain(sql, cons)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "int8") || !strings.Contains(plan, "guard band") {
		t.Fatalf("default (QuantAuto) EXPLAIN lacks int8 pricing:\n%s", plan)
	}

	db.SetQuantization(exec.QuantOff)
	plan, err = db.Explain(sql, cons)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "int8") {
		t.Fatalf("QuantOff EXPLAIN still prices int8:\n%s", plan)
	}
}
