package profile

import (
	"math/rand"
	"testing"

	"tahoma/internal/arch"
	"tahoma/internal/img"
	"tahoma/internal/model"
	"tahoma/internal/scenario"
	"tahoma/internal/xform"
)

func testInputs(t *testing.T) ([]*model.Model, []*img.Image) {
	t.Helper()
	spec := arch.Spec{ConvLayers: 1, ConvWidth: 2, DenseWidth: 2, Kernel: 3}
	m1, err := model.New(spec, xform.Transform{Size: 8, Color: img.Gray}, model.Basic, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := model.New(spec, xform.Transform{Size: 16, Color: img.RGB}, model.Basic, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var srcs []*img.Image
	for i := 0; i < 3; i++ {
		im := img.New(32, 32, img.RGB)
		for j := range im.Pix {
			im.Pix[j] = rng.Float32()
		}
		srcs = append(srcs, im)
	}
	return []*model.Model{m1, m2}, srcs
}

func TestMeasureProducesPositiveCosts(t *testing.T) {
	models, srcs := testInputs(t)
	m, err := Measure(models, srcs, Options{Dir: t.TempDir(), MinIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.SourceLoad <= 0 {
		t.Fatal("source load must take time")
	}
	for _, mod := range models {
		id := mod.Xform.ID()
		if m.RepLoad[id] <= 0 || m.RepTransform[id] <= 0 {
			t.Fatalf("rep costs missing for %s: %+v", id, m)
		}
		if m.Infer[mod.ID()] <= 0 {
			t.Fatalf("infer cost missing for %s", mod.ID())
		}
	}
	// The 16x16 RGB model must cost more to infer than the 8x8 gray model.
	if m.Infer[models[1].ID()] <= m.Infer[models[0].ID()] {
		t.Logf("warning: bigger model measured cheaper (%v vs %v) — timer jitter",
			m.Infer[models[1].ID()], m.Infer[models[0].ID()])
	}
}

func TestMeasureErrors(t *testing.T) {
	models, srcs := testInputs(t)
	if _, err := Measure(nil, srcs, Options{}); err == nil {
		t.Fatal("no models must error")
	}
	if _, err := Measure(models, nil, Options{}); err == nil {
		t.Fatal("no samples must error")
	}
}

func TestCostModelAssembly(t *testing.T) {
	models, srcs := testInputs(t)
	meas, err := Measure(models, srcs, Options{Dir: t.TempDir(), MinIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range scenario.AllKinds {
		cm := meas.CostModel(kind)
		if cm.Kind() != kind {
			t.Fatalf("kind %v mispacked", kind)
		}
		if cm.InferCost(models[0]) != meas.Infer[models[0].ID()] {
			t.Fatal("infer cost mismatch")
		}
	}
	// ARCHIVE pays source; ONGOING pays rep loads; CAMERA pays transforms.
	if meas.CostModel(scenario.Archive).SourceCost() != meas.SourceLoad {
		t.Fatal("archive source cost mismatch")
	}
	if meas.CostModel(scenario.Ongoing).RepCost(models[0].Xform) != meas.RepLoad[models[0].Xform.ID()] {
		t.Fatal("ongoing rep cost mismatch")
	}
	if meas.CostModel(scenario.Camera).RepCost(models[0].Xform) != meas.RepTransform[models[0].Xform.ID()] {
		t.Fatal("camera rep cost mismatch")
	}
}
