package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

func randOffsetBytes(rng *rand.Rand, n int) []uint8 {
	b := make([]uint8, n)
	for i := range b {
		// Offset form of q ∈ [-127, 127]: bytes in [1, 255].
		b[i] = uint8(rng.Intn(255) + 1)
	}
	return b
}

// TestGemmInt8BitIdenticalToNaiveOracle: the blocked SWAR kernel must match
// the naive int32 triple loop bit-for-bit at every unrolling edge case —
// odd column counts that leave a padding lane, column counts straddling the
// 8-wide groups, tiny and empty inner dimensions.
func TestGemmInt8BitIdenticalToNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ms := []int{1, 2, 3, 4, 5, 16}
	// 512/513/1025 straddle kSlabBound — the small-k → slab-accumulate
	// driver switch and partial trailing slabs must be invisible in the bits.
	ks := []int{0, 1, 2, 3, 9, 27, 64, 67, 512, 513, 1025}
	ns := []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 33, 64, 100}
	var packed Int8Packed // reused across shapes, like a layer's scratch
	for _, m := range ms {
		for _, k := range ks {
			for _, n := range ns {
				t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
					aOff := randOffsetBytes(rng, m*k)
					bOff := randOffsetBytes(rng, k*n)
					a := &Int8Weights{M: m, K: k, Off: aOff, RowSum: make([]int32, m), Scale: make([]float32, m)}
					for i := 0; i < m; i++ {
						var s int32
						for _, b := range aOff[i*k : (i+1)*k] {
							s += int32(b)
						}
						a.RowSum[i] = s
					}
					packed.Pack(bOff, k, n)
					got := make([]int32, m*n)
					for i := range got {
						got[i] = -999 // stale state must be overwritten
					}
					GemmInt8(got, a, &packed)
					want := make([]int32, m*n)
					GemmInt8Naive(want, aOff, bOff, m, k, n)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("element %d: blocked %d != oracle %d", i, got[i], want[i])
						}
					}
				})
			}
		}
	}
}

// FuzzGemmInt8 drives the same blocked-vs-oracle comparison over fuzzer-chosen
// shapes and byte contents.
func FuzzGemmInt8(f *testing.F) {
	f.Add(3, 9, 17, int64(1))
	f.Add(1, 1, 1, int64(2))
	f.Add(5, 67, 33, int64(3))
	f.Add(4, 2, 8, int64(4))
	f.Fuzz(func(t *testing.T, m, k, n int, seed int64) {
		m = m&7 + 1
		k = k & 2047 // crosses kSlabBound so the fuzzer hits both drivers
		n = n&127 + 1
		rng := rand.New(rand.NewSource(seed))
		aOff := randOffsetBytes(rng, m*k)
		bOff := randOffsetBytes(rng, k*n)
		a := &Int8Weights{M: m, K: k, Off: aOff, RowSum: make([]int32, m)}
		for i := 0; i < m; i++ {
			var s int32
			for _, b := range aOff[i*k : (i+1)*k] {
				s += int32(b)
			}
			a.RowSum[i] = s
		}
		var packed Int8Packed
		packed.Pack(bOff, k, n)
		got := make([]int32, m*n)
		GemmInt8(got, a, &packed)
		want := make([]int32, m*n)
		GemmInt8Naive(want, aOff, bOff, m, k, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %dx%dx%d element %d: blocked %d != oracle %d", m, k, n, i, got[i], want[i])
			}
		}
	})
}

// TestQuantizeOffsetRounding pins the rounding contract: half away from zero,
// clamped to ±127, offset by 128 — a pure function of (value, scale).
func TestQuantizeOffsetRounding(t *testing.T) {
	cases := []struct {
		v    float32
		want uint8
	}{
		{0, 128}, {0.4, 128}, {0.5, 129}, {1.49, 129}, {1.5, 130},
		{-0.4, 128}, {-0.5, 127}, {-1.5, 126},
		{127, 255}, {126.5, 255}, {200, 255}, {-127, 1}, {-200, 1},
	}
	dst := make([]uint8, 1)
	for _, c := range cases {
		QuantizeOffset(dst, []float32{c.v}, 1)
		if dst[0] != c.want {
			t.Errorf("quantize(%v, scale=1) = %d, want %d", c.v, dst[0], c.want)
		}
	}
	// Scale scales before rounding.
	QuantizeOffset(dst, []float32{3}, 2)
	if dst[0] != 128+2 {
		t.Errorf("quantize(3, scale=2) = %d, want 130", dst[0])
	}
	if got := DequantByte(130, 2); got != 4 {
		t.Errorf("DequantByte(130, 2) = %v, want 4", got)
	}
}

// TestPackQuantMatchesQuantizeThenPack: the fused pass must leave the packed
// matrix in bit-identical state to the two-pass reference, including column
// sums, padding lanes, and dirty reused buffers.
func TestPackQuantMatchesQuantizeThenPack(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var fused, ref Int8Packed
	for _, shape := range [][2]int{{1, 1}, {3, 2}, {2, 3}, {9, 7}, {16, 16}, {64, 5}, {7, 100}, {130, 9}} {
		k, n := shape[0], shape[1]
		src := make([]float32, k*n)
		for i := range src {
			src[i] = float32(rng.NormFloat64()) * 40
		}
		scale := float32(0.31)
		q := make([]uint8, k*n)
		QuantizeOffset(q, src, scale)
		ref.Pack(q, k, n)
		fused.PackQuant(src, k, n, scale)
		if fused.K != ref.K || fused.N != ref.N || fused.Words != ref.Words {
			t.Fatalf("%dx%d: geometry (%d,%d,%d) != (%d,%d,%d)", k, n, fused.K, fused.N, fused.Words, ref.K, ref.N, ref.Words)
		}
		for i := range ref.Data {
			if fused.Data[i] != ref.Data[i] {
				t.Fatalf("%dx%d: word %d: fused %x != ref %x", k, n, i, fused.Data[i], ref.Data[i])
			}
		}
		for j := range ref.ColSum {
			if fused.ColSum[j] != ref.ColSum[j] {
				t.Fatalf("%dx%d: colsum %d: fused %d != ref %d", k, n, j, fused.ColSum[j], ref.ColSum[j])
			}
		}
	}
}

// TestPackQuantPlanesMatchesFlattenThenPack: packing straight from the
// channel-major [C, B, H·W] layout must be bit-identical to flattening
// (transposing to [C·H·W, B]) first and then quantize+pack — the fusion
// contract the quantized Flatten→Dense shortcut relies on.
func TestPackQuantPlanesMatchesFlattenThenPack(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var fused, ref Int8Packed
	for _, shape := range [][3]int{{1, 1, 1}, {1, 3, 5}, {3, 2, 4}, {2, 7, 9}, {3, 18, 16}, {8, 5, 25}, {1, 100, 7}, {4, 64, 64}} {
		chans, n, hw := shape[0], shape[1], shape[2]
		k := chans * hw
		src := make([]float32, chans*n*hw) // [C, B, H·W]
		for i := range src {
			src[i] = float32(rng.NormFloat64()) * 40
		}
		scale := float32(0.31)
		// Reference: the Flatten transpose — row r = c·hw + p, column j.
		flat := make([]float32, k*n)
		for c := 0; c < chans; c++ {
			for j := 0; j < n; j++ {
				for p := 0; p < hw; p++ {
					flat[(c*hw+p)*n+j] = src[(c*n+j)*hw+p]
				}
			}
		}
		q := make([]uint8, k*n)
		QuantizeOffset(q, flat, scale)
		ref.Pack(q, k, n)
		fused.PackQuantPlanes(src, chans, hw, n, scale)
		if fused.K != ref.K || fused.N != ref.N || fused.Words != ref.Words {
			t.Fatalf("C=%d B=%d HW=%d: geometry (%d,%d,%d) != (%d,%d,%d)", chans, n, hw, fused.K, fused.N, fused.Words, ref.K, ref.N, ref.Words)
		}
		for i := range ref.Data {
			if fused.Data[i] != ref.Data[i] {
				t.Fatalf("C=%d B=%d HW=%d: word %d: fused %x != ref %x", chans, n, hw, i, fused.Data[i], ref.Data[i])
			}
		}
		for j := range ref.ColSum {
			if fused.ColSum[j] != ref.ColSum[j] {
				t.Fatalf("C=%d B=%d HW=%d: colsum %d: fused %d != ref %d", chans, n, hw, j, fused.ColSum[j], ref.ColSum[j])
			}
		}
	}
}

// TestNewInt8WeightsRoundTrip: per-channel scales must bound the per-element
// reconstruction error by half a quantization step of that row's own scale.
func TestNewInt8WeightsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	w := New(6, 40)
	for i := range w.Data {
		w.Data[i] = (rng.Float32()*2 - 1) * float32(1+i%6) // rows at very different magnitudes
	}
	q := NewInt8Weights(w)
	for i := 0; i < q.M; i++ {
		scale := q.Scale[i]
		for p := 0; p < q.K; p++ {
			orig := w.Data[i*q.K+p]
			back := DequantByte(q.Off[i*q.K+p], scale)
			if d := back - orig; d > scale/2+1e-6 || d < -scale/2-1e-6 {
				t.Fatalf("row %d elem %d: dequant %v vs %v exceeds half-step %v", i, p, back, orig, scale/2)
			}
		}
	}
	if q.Bytes() >= 4*int64(len(w.Data)) {
		t.Fatalf("int8 weights (%d bytes) not smaller than f32 (%d bytes)", q.Bytes(), 4*len(w.Data))
	}
	// An all-zero row must still get a positive, finite scale.
	zw := New(1, 8)
	zq := NewInt8Weights(zw)
	if zq.Scale[0] <= 0 {
		t.Fatalf("zero row scale = %v", zq.Scale[0])
	}
	if zq.Off[0] != QuantZeroByte {
		t.Fatalf("quantized zero byte = %d, want %d", zq.Off[0], QuantZeroByte)
	}
}

// TestIm2ColBatchBytesMatchesFloatPath: on integer-valued inputs quantized at
// scale 1, the byte im2col must equal the f32 im2col plus the 128 offset at
// every position — including the padding, where a quantized 0.0 is byte 128.
func TestIm2ColBatchBytesMatchesFloatPath(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	geoms := []ConvGeom{
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 2, InH: 9, InW: 7, KH: 5, KW: 3, StrideH: 2, StrideW: 2, PadH: 2, PadW: 1},
		{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 0, PadW: 0},
		{InC: 1, InH: 2, InW: 2, KH: 7, KW: 7, StrideH: 1, StrideW: 1, PadH: 3, PadW: 3},
	}
	for gi, g := range geoms {
		for _, bsz := range []int{1, 3} {
			t.Run(fmt.Sprintf("geom=%d/b=%d", gi, bsz), func(t *testing.T) {
				x := New(g.InC, bsz, g.InH, g.InW)
				for i := range x.Data {
					x.Data[i] = float32(rng.Intn(255) - 127)
				}
				qx := make([]uint8, len(x.Data))
				QuantizeOffset(qx, x.Data, 1)
				cols := bsz * g.ColCols()
				qcol := make([]uint8, g.ColRows()*cols)
				for i := range qcol {
					qcol[i] = 7 // stale bytes must be fully overwritten
				}
				Im2ColBatchBytes(qcol, qx, bsz, g)
				fcol := New(g.ColRows(), cols)
				Im2ColBatch(fcol, x, g)
				for i := range fcol.Data {
					want := uint8(int32(fcol.Data[i]) + 128)
					if qcol[i] != want {
						t.Fatalf("col byte %d = %d, want %d (f32 %v)", i, qcol[i], want, fcol.Data[i])
					}
				}
			})
		}
	}
}

func TestGemmInt8PanicsOnBadShapes(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	var p Int8Packed
	p.Pack(make([]uint8, 6), 2, 3)
	expectPanic("inner", func() {
		a := NewInt8Weights(New(2, 3))
		var b Int8Packed
		b.Pack(make([]uint8, 8), 4, 2)
		GemmInt8(make([]int32, 4), a, &b)
	})
	expectPanic("out", func() {
		a := NewInt8Weights(New(2, 3))
		var b Int8Packed
		b.Pack(make([]uint8, 9), 3, 3)
		GemmInt8(make([]int32, 5), a, &b)
	})
	expectPanic("pack", func() { p.Pack(make([]uint8, 5), 2, 3) })
	expectPanic("weights-rank", func() { NewInt8Weights(New(2, 2, 2)) })
}

func TestGemmInt8ZeroDims(t *testing.T) {
	a := NewInt8Weights(New(2, 0))
	var b Int8Packed
	b.Pack(nil, 0, 3)
	c := []int32{9, 9, 9, 9, 9, 9}
	GemmInt8(c, a, &b)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("k=0 product element %d = %d, want 0", i, v)
		}
	}
	b.Pack(nil, 0, 0)
	a2 := NewInt8Weights(New(2, 0))
	GemmInt8(nil, a2, &b) // n=0 must not panic
}

// benchInt8Operands builds GEMM operands at a given shape from a fixed seed.
func benchInt8Operands(m, k, n int) (*Int8Weights, *Int8Packed, []uint8, []uint8) {
	rng := rand.New(rand.NewSource(31))
	w := randTensor(rng, m, k)
	a := NewInt8Weights(w)
	bOff := randOffsetBytes(rng, k*n)
	var packed Int8Packed
	packed.Pack(bOff, k, n)
	return a, &packed, a.Off, bOff
}

// BenchmarkGemmInt8 compares the SWAR kernel against the naive int8 oracle
// and against the f32 Gemm at the same logical shape — the early-cascade conv
// shape (outC × inC·K·K × batch·oh·ow) and the wide dense shape.
func BenchmarkGemmInt8(b *testing.B) {
	shapes := []struct {
		name    string
		m, k, n int
	}{
		{"conv16x27xN", 16, 27, 4096},
		{"dense64x1024x16", 64, 1024, 16},
	}
	for _, sh := range shapes {
		a, packed, aOff, bOff := benchInt8Operands(sh.m, sh.k, sh.n)
		c32 := make([]int32, sh.m*sh.n)
		b.Run(sh.name+"/blocked", func(b *testing.B) {
			b.SetBytes(int64(sh.m * sh.k * sh.n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GemmInt8(c32, a, packed)
			}
		})
		b.Run(sh.name+"/naive", func(b *testing.B) {
			b.SetBytes(int64(sh.m * sh.k * sh.n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GemmInt8Naive(c32, aOff, bOff, sh.m, sh.k, sh.n)
			}
		})
		rng := rand.New(rand.NewSource(32))
		fa := randTensor(rng, sh.m, sh.k)
		fb := randTensor(rng, sh.k, sh.n)
		fc := New(sh.m, sh.n)
		b.Run(sh.name+"/f32", func(b *testing.B) {
			b.SetBytes(int64(sh.m * sh.k * sh.n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Gemm(fc, fa, fb)
			}
		})
	}
}
