// Package core implements the paper's primary contribution: the TAHOMA
// optimizer. Given a labeled dataset for one binary contains_object
// predicate, system initialization (Figure 2) trains the full model design
// space A × F, calibrates per-model decision thresholds, scores every model
// once on the evaluation set, and compiles a cascade evaluator. At query
// time the system prices every candidate cascade under the deployment
// scenario's cost model, computes the Pareto-optimal set over accuracy and
// throughput, and selects the cascade matching the user's constraints.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"tahoma/internal/arch"
	"tahoma/internal/cascade"
	"tahoma/internal/img"
	"tahoma/internal/model"
	"tahoma/internal/pareto"
	"tahoma/internal/scenario"
	"tahoma/internal/synth"
	"tahoma/internal/thresh"
	"tahoma/internal/train"
	"tahoma/internal/xform"
	"tahoma/internal/zoo"
)

// Config controls the model design space and initialization effort. The
// zero value is unusable; start from DefaultConfig or TinyConfig.
type Config struct {
	// Sizes are the input resolutions of F (paper: 30/60/120/224; here a
	// ladder scaled to the synthetic corpus, e.g. 8/16/32/64).
	Sizes []int
	// Colors are the color variants of F.
	Colors []img.ColorMode
	// ConvLayers, ConvWidths, DenseWidths and Kernel define the
	// architecture grid A.
	ConvLayers  []int
	ConvWidths  []int
	DenseWidths []int
	Kernel      int
	// Deep configures the expensive reference classifier (the fine-tuned
	// ResNet50 analogue): the largest transform with a deeper spec,
	// trained for more epochs.
	DeepSpec   arch.Spec
	DeepXform  xform.Transform
	DeepEpochs int
	// PrecisionTargets are the threshold calibration targets
	// (paper: 0.91/0.93/0.95/0.97/0.99).
	PrecisionTargets []float64
	// ThreshGridSteps is the calibration grid resolution.
	ThreshGridSteps int
	// Train controls the fitting loop for grid models.
	Train train.Options
	// Workers bounds parallelism during initialization (0 = GOMAXPROCS).
	Workers int
	// Seed derives all model initializations.
	Seed int64
}

// DefaultConfig mirrors the paper's grid shape at the scale the synthetic
// corpus uses (64×64 sources): 4 sizes × 5 colors × (2·2·2 − duplicates)
// architectures, 3 precision targets.
func DefaultConfig() Config {
	return Config{
		Sizes:            []int{8, 16, 32, 64},
		Colors:           xform.AllColors,
		ConvLayers:       []int{1, 2},
		ConvWidths:       []int{4, 8},
		DenseWidths:      []int{8, 16},
		Kernel:           3,
		DeepSpec:         arch.Spec{ConvLayers: 3, ConvWidth: 16, DenseWidth: 32, Kernel: 3},
		DeepXform:        xform.Transform{Size: 64, Color: img.RGB},
		DeepEpochs:       8,
		PrecisionTargets: []float64{0.93, 0.95, 0.97},
		ThreshGridSteps:  100,
		Train:            train.Options{Epochs: 4, BatchSize: 16, LR: 0.004},
		Seed:             1,
	}
}

// TinyConfig is a minimal design space for tests: 2 sizes × 2 colors ×
// 2 archs on 16×16 sources.
func TinyConfig() Config {
	return Config{
		Sizes:            []int{8, 16},
		Colors:           []img.ColorMode{img.RGB, img.Gray},
		ConvLayers:       []int{0, 1},
		ConvWidths:       []int{4},
		DenseWidths:      []int{8},
		Kernel:           3,
		DeepSpec:         arch.Spec{ConvLayers: 2, ConvWidth: 8, DenseWidth: 16, Kernel: 3},
		DeepXform:        xform.Transform{Size: 16, Color: img.RGB},
		DeepEpochs:       12,
		PrecisionTargets: []float64{0.90, 0.95},
		ThreshGridSteps:  50,
		Train:            train.Options{Epochs: 3, BatchSize: 8, LR: 0.01},
		Seed:             1,
	}
}

// Validate reports configuration problems before expensive work starts.
func (c Config) Validate() error {
	if len(c.Sizes) == 0 || len(c.Colors) == 0 {
		return fmt.Errorf("core: empty transform grid")
	}
	if len(c.ConvLayers) == 0 || len(c.DenseWidths) == 0 {
		return fmt.Errorf("core: empty architecture grid")
	}
	if len(c.PrecisionTargets) == 0 {
		return fmt.Errorf("core: no precision targets")
	}
	for _, p := range c.PrecisionTargets {
		if p <= 0 || p > 1 {
			return fmt.Errorf("core: precision target %v out of (0,1]", p)
		}
	}
	if err := c.DeepSpec.Validate(); err != nil {
		return fmt.Errorf("core: deep spec: %w", err)
	}
	if err := c.DeepXform.Validate(); err != nil {
		return fmt.Errorf("core: deep transform: %w", err)
	}
	return nil
}

// System is an initialized TAHOMA instance for one binary predicate.
type System struct {
	Predicate string
	Config    Config

	// Models holds the trained design space; DeepIdx points at the
	// expensive reference classifier inside it.
	Models  []*model.Model
	DeepIdx int

	// Thresholds[i] are model i's calibrated settings, one per precision
	// target.
	Thresholds [][]thresh.Thresholds

	// EvalScores[i][j] is model i's output on evaluation image j.
	EvalScores [][]float32
	EvalTruth  []bool

	// Evaluator is the compiled bitset simulator over the eval set.
	Evaluator *cascade.Evaluator

	// TrainReports records per-model fitting outcomes.
	TrainReports []train.Report
}

// BuildModels constructs the untrained design space M = A × F plus the deep
// reference model (always last). Architecture/transform pairs whose input is
// too small for the architecture's pooling depth are skipped, so every
// returned model is buildable.
func BuildModels(cfg Config) ([]*model.Model, int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	specs := arch.Grid(cfg.ConvLayers, cfg.ConvWidths, cfg.DenseWidths, cfg.Kernel)
	transforms := xform.Grid(cfg.Sizes, cfg.Colors)
	var models []*model.Model
	for _, t := range transforms {
		for _, s := range specs {
			if t.Size < s.MinInputSize() {
				continue
			}
			m, err := model.New(s, t, model.Basic, cfg.Seed)
			if err != nil {
				return nil, 0, err
			}
			models = append(models, m)
		}
	}
	if len(models) == 0 {
		return nil, 0, fmt.Errorf("core: design space is empty (all architectures too deep for all sizes)")
	}
	deep, err := model.New(cfg.DeepSpec, cfg.DeepXform, model.Deep, cfg.Seed)
	if err != nil {
		return nil, 0, fmt.Errorf("core: building deep model: %w", err)
	}
	models = append(models, deep)
	return models, len(models) - 1, nil
}

// Initialize runs the full system-initialization pipeline of Figure 2 on the
// given splits and returns a ready System.
func Initialize(predicate string, splits synth.Splits, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if splits.Train.Len() == 0 || splits.Config.Len() == 0 || splits.Eval.Len() == 0 {
		return nil, fmt.Errorf("core: all three splits must be non-empty (train=%d config=%d eval=%d)",
			splits.Train.Len(), splits.Config.Len(), splits.Eval.Len())
	}
	models, deepIdx, err := BuildModels(cfg)
	if err != nil {
		return nil, err
	}

	// 1. Model trainer: fit the grid in parallel, then the deep model with
	// its longer schedule.
	basics := models[:deepIdx]
	reports, err := train.All(basics, splits.Train, cfg.Train, cfg.Workers, nil)
	if err != nil {
		return nil, err
	}
	deepOpts := cfg.Train
	deepOpts.Epochs = cfg.DeepEpochs
	deepReport, err := train.Model(models[deepIdx], splits.Train, deepOpts)
	if err != nil {
		return nil, fmt.Errorf("core: training deep model: %w", err)
	}
	reports = append(reports, deepReport)

	sys := &System{
		Predicate:    predicate,
		Config:       cfg,
		Models:       models,
		DeepIdx:      deepIdx,
		TrainReports: reports,
	}

	// 2. Decision thresholds from the configuration set (Section V-C).
	configTruth := train.Labels(splits.Config)
	configScores := scoreAll(models, splits.Config, cfg.Workers)
	sys.Thresholds = make([][]thresh.Thresholds, len(models))
	for i := range models {
		ths, err := thresh.CalibrateAll(configScores[i], configTruth, cfg.PrecisionTargets, cfg.ThreshGridSteps)
		if err != nil {
			return nil, fmt.Errorf("core: calibrating %s: %w", models[i].ID(), err)
		}
		sys.Thresholds[i] = ths
	}

	// 3. Evaluation-set scoring, once per model (Section V-D).
	sys.EvalTruth = train.Labels(splits.Eval)
	sys.EvalScores = scoreAll(models, splits.Eval, cfg.Workers)

	// 3b. Int8 calibration, once per model, from the same eval split: absmax
	// activation scales plus the worst observed f32↔int8 score gap (the guard
	// band's radius). The record travels with the zoo, so a restored repo
	// serves the exact operator that was calibrated here. Models whose inner
	// dimensions exceed the exact-int32 bound are skipped and serve float32.
	if err := calibrateQuantAll(models, splits.Eval, cfg.Workers); err != nil {
		return nil, err
	}

	// 4. Compile the cascade evaluator.
	ev, err := cascade.NewEvaluator(models, sys.EvalScores, sys.Thresholds, sys.EvalTruth)
	if err != nil {
		return nil, err
	}
	sys.Evaluator = ev
	return sys, nil
}

// scoreAll scores every model over ds, parallelized across models.
func scoreAll(models []*model.Model, ds synth.Dataset, workers int) [][]float32 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]float32, len(models))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = train.Scores(models[i], ds)
			}
		}()
	}
	for i := range models {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// calibrateQuantAll calibrates the int8 path of every quantizable model over
// ds, parallelized across models (each model transforms the split to its own
// representation, the same per-model work eval scoring pays).
func calibrateQuantAll(models []*model.Model, ds synth.Dataset, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, len(models))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				m := models[i]
				if !m.Net.QuantSupported() {
					continue
				}
				reps := make([]*img.Image, ds.Len())
				for j, e := range ds.Examples {
					reps[j] = m.Xform.Apply(e.Image)
				}
				if _, err := m.CalibrateQuant(reps); err != nil {
					errs[i] = fmt.Errorf("core: calibrating int8 for %s: %w", m.ID(), err)
				}
			}
		}()
	}
	for i := range models {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// BuildOptions returns the paper's cascade enumeration for this system:
// one- and two-level cascades over the basic models, plus deep-terminated
// variants, with the deep model also eligible as a standalone final level.
func (s *System) BuildOptions(maxDepth int) cascade.BuildOptions {
	basic := make([]int, 0, len(s.Models)-1)
	for i := range s.Models {
		if i != s.DeepIdx {
			basic = append(basic, i)
		}
	}
	finals := append(append([]int(nil), basic...), s.DeepIdx)
	// NumThresh comes from the calibrated thresholds themselves, not the
	// config: a system restored from a persisted repository (FromRepo) may
	// carry a different caller-supplied Config than the one it was trained
	// with, and the enumeration must match what is actually calibrated.
	numThresh := len(s.Config.PrecisionTargets)
	if len(s.Thresholds) > 0 {
		numThresh = len(s.Thresholds[0])
	}
	return cascade.BuildOptions{
		LevelModels: basic,
		FinalModels: finals,
		NumThresh:   numThresh,
		MaxDepth:    maxDepth,
		AppendDeep:  true,
		DeepModel:   s.DeepIdx,
	}
}

// EvaluateCascades builds and evaluates the cascade set under a cost model,
// returning one result per cascade.
func (s *System) EvaluateCascades(opts cascade.BuildOptions, cm scenario.CostModel) ([]cascade.Result, error) {
	specs, err := cascade.Build(opts)
	if err != nil {
		return nil, err
	}
	ct := s.Evaluator.CompileCosts(cm)
	return s.Evaluator.EvaluateAll(specs, ct, s.Config.Workers), nil
}

// Points converts results into frontier points.
func Points(results []cascade.Result) []pareto.Point {
	pts := make([]pareto.Point, len(results))
	for i, r := range results {
		pts[i] = pareto.Point{Throughput: r.Throughput, Accuracy: r.Accuracy, Index: i}
	}
	return pts
}

// Constraints are the user's query-time requirements (Uacc / Uthru).
type Constraints struct {
	// MaxAccuracyLoss is the tolerable relative accuracy drop versus the
	// most accurate cascade available (Uacc).
	MaxAccuracyLoss float64
	// MinThroughput is a floor in classifications/sec (Uthru); 0 disables.
	MinThroughput float64
}

// Select picks the Pareto-optimal cascade matching the constraints: the
// fastest cascade within the accuracy budget, additionally honoring the
// throughput floor when one is given.
func Select(frontier []pareto.Point, c Constraints) (pareto.Point, error) {
	if c.MinThroughput > 0 {
		var eligible []pareto.Point
		for _, p := range frontier {
			if p.Throughput >= c.MinThroughput {
				eligible = append(eligible, p)
			}
		}
		if len(eligible) == 0 {
			return pareto.Point{}, fmt.Errorf("core: no cascade reaches %.1f/sec", c.MinThroughput)
		}
		frontier = eligible
	}
	return pareto.SelectByAccuracyLoss(frontier, c.MaxAccuracyLoss)
}

// Runtime materializes an executable cascade for a chosen result.
func (s *System) Runtime(spec cascade.Spec) (*cascade.Runtime, error) {
	return cascade.NewRuntime(spec, s.Models, s.Thresholds)
}

// Repo converts the system into a persistable model repository.
func (s *System) Repo() *zoo.Repo {
	r := &zoo.Repo{Predicate: s.Predicate, EvalTruth: s.EvalTruth}
	for i, m := range s.Models {
		r.Entries = append(r.Entries, zoo.Entry{
			Model:      m,
			Thresholds: s.Thresholds[i],
			EvalScores: s.EvalScores[i],
		})
	}
	return r
}

// FromRepo reconstructs a System (without training reports) from a persisted
// repository, re-compiling the cascade evaluator.
func FromRepo(r *zoo.Repo, cfg Config) (*System, error) {
	if len(r.Entries) == 0 {
		return nil, fmt.Errorf("core: repository has no models")
	}
	sys := &System{Predicate: r.Predicate, Config: cfg, DeepIdx: -1}
	for i, e := range r.Entries {
		sys.Models = append(sys.Models, e.Model)
		sys.Thresholds = append(sys.Thresholds, e.Thresholds)
		sys.EvalScores = append(sys.EvalScores, e.EvalScores)
		if e.Model.Kind == model.Deep {
			sys.DeepIdx = i
		}
	}
	if sys.DeepIdx == -1 {
		return nil, fmt.Errorf("core: repository has no deep reference model")
	}
	sys.EvalTruth = r.EvalTruth
	ev, err := cascade.NewEvaluator(sys.Models, sys.EvalScores, sys.Thresholds, sys.EvalTruth)
	if err != nil {
		return nil, err
	}
	sys.Evaluator = ev
	return sys, nil
}
