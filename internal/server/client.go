package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ClientOptions tune the client's timeouts and retry policy. The zero value
// is sane: 2s connect, 30s per-attempt request timeout, up to 3 retries with
// exponential backoff + jitter inside a 2-minute elapsed budget.
type ClientOptions struct {
	// ConnectTimeout bounds TCP connection establishment (0 = 2s).
	ConnectTimeout time.Duration
	// RequestTimeout bounds one attempt end to end, headers and body
	// (0 = 30s; negative = unbounded, for interactive streaming of very
	// large results).
	RequestTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried (0 = 3;
	// negative = never retry). Every request the client makes is idempotent —
	// queries are read-only and classification is deterministic, so a retried
	// query returns labels bit-identical to the first attempt — which is what
	// makes blind retry safe. Retried failures: connection/transport errors,
	// and 502/503/504 responses (503 honoring the server's Retry-After).
	MaxRetries int
	// RetryBase is the first backoff step (0 = 100ms); each retry doubles it
	// (capped at 5s) and adds up to 50% random jitter so clients shed from a
	// loaded server do not stampede back in lockstep.
	RetryBase time.Duration
	// RetryMaxElapsed caps the total time spent across attempts and backoffs
	// (0 = 2m). A per-call ctx deadline always wins over this budget.
	RetryMaxElapsed time.Duration
}

func (o ClientOptions) normalized() ClientOptions {
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 2 * time.Second
	}
	switch {
	case o.RequestTimeout == 0:
		o.RequestTimeout = 30 * time.Second
	case o.RequestTimeout < 0:
		o.RequestTimeout = 0
	}
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = 3
	case o.MaxRetries < 0:
		o.MaxRetries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.RetryMaxElapsed <= 0 {
		o.RetryMaxElapsed = 2 * time.Minute
	}
	return o
}

// Client talks to a running tahoma server. The zero accuracy budget defers
// to the server's default. Failed attempts retry per ClientOptions; every
// method has a ...Ctx variant taking a per-call context whose deadline is
// also forwarded to the server as a Deadline-Ms header, so the server stops
// working on a query the moment the client stops waiting for it.
type Client struct {
	base    string
	opts    ClientOptions
	hc      *http.Client
	retries atomic.Int64
}

// NewClient builds a client for a server base URL, e.g.
// "http://127.0.0.1:8080", with default ClientOptions.
func NewClient(base string) *Client {
	return NewClientWith(base, ClientOptions{})
}

// NewClientWith builds a client with explicit timeout/retry options.
func NewClientWith(base string, opts ClientOptions) *Client {
	opts = opts.normalized()
	return &Client{
		base: strings.TrimRight(base, "/"),
		opts: opts,
		hc: &http.Client{
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: opts.ConnectTimeout}).DialContext,
				MaxIdleConnsPerHost: 16,
			},
		},
	}
}

// Retries reports how many retry attempts this client has made — the
// client-side half of the server's shed counters.
func (c *Client) Retries() int64 { return c.retries.Load() }

// QueryOptions are the per-request cascade-selection constraints.
type QueryOptions struct {
	// MaxAccuracyLoss is the accuracy budget (Uacc). nil defers to the
	// server's default; AccuracyLoss(0) explicitly requests the most
	// accurate cascade.
	MaxAccuracyLoss *float64
	MinThroughput   float64
}

// AccuracyLoss builds an explicit accuracy budget for QueryOptions.
func AccuracyLoss(v float64) *float64 { return &v }

func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e errorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

// retryableStatus reports whether a response status is worth retrying:
// load shed and gateway-side failures, where a later attempt can win.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// retryAfter extracts a 503's Retry-After hint (whole seconds), 0 if absent.
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// cancelBody ties an attempt's timeout context to the response body: the
// timeout must stay armed while the caller streams the body, and must be
// released when the body is closed.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// do runs one logical request with the retry policy. build must construct a
// fresh *http.Request per attempt (a consumed body cannot be resent). The
// returned response's Body must be closed; non-2xx responses are returned
// (not errors) once retries are exhausted, so callers decode the error body.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	start := time.Now()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var lastErr error
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if c.opts.RequestTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
		}
		req, err := build()
		if err != nil {
			cancel()
			return nil, err
		}
		req = req.WithContext(actx)
		// Forward the caller's deadline so the server cancels with us.
		if dl, ok := ctx.Deadline(); ok {
			if ms := time.Until(dl).Milliseconds(); ms > 0 {
				req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
			}
		}
		resp, err := c.hc.Do(req)
		if err == nil && !retryableStatus(resp.StatusCode) {
			resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
			return resp, nil
		}

		// Attempt failed (transport error or retryable status). Decide
		// whether another attempt fits the policy and the caller's patience.
		var sleep time.Duration
		if err != nil {
			lastErr = err
		} else {
			lastErr = decodeError(resp)
			sleep = retryAfter(resp)
			resp.Body.Close()
		}
		cancel()
		if ctx.Err() != nil {
			// The caller's own ctx ended — its error, not the attempt's.
			return nil, ctx.Err()
		}
		if attempt >= c.opts.MaxRetries || time.Since(start) > c.opts.RetryMaxElapsed {
			return nil, lastErr
		}
		backoff := c.opts.RetryBase << uint(attempt)
		if backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
		backoff += time.Duration(rng.Int63n(int64(backoff)/2 + 1))
		if sleep < backoff {
			sleep = backoff
		}
		c.retries.Add(1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(sleep):
		}
	}
}

func (c *Client) postQuery(ctx context.Context, sql string, opts QueryOptions, ndjson bool) (*http.Response, error) {
	req := QueryRequest{SQL: sql, MaxAccuracyLoss: opts.MaxAccuracyLoss, MinThroughput: opts.MinThroughput, NDJSON: ndjson}
	blob, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		hr, err := http.NewRequest(http.MethodPost, c.base+"/query", bytes.NewReader(blob))
		if err != nil {
			return nil, err
		}
		hr.Header.Set("Content-Type", "application/json")
		return hr, nil
	})
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp, nil
}

// Query runs sql and returns the full result. Row cells decode as
// json.Number (int64 columns) or string.
func (c *Client) Query(sql string, opts QueryOptions) (*QueryResponse, error) {
	return c.QueryCtx(context.Background(), sql, opts)
}

// QueryCtx is Query with a per-call context: cancelling it aborts the
// request, and its deadline is forwarded to the server as Deadline-Ms.
func (c *Client) QueryCtx(ctx context.Context, sql string, opts QueryOptions) (*QueryResponse, error) {
	resp, err := c.postQuery(ctx, sql, opts, false)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	var out QueryResponse
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	return &out, nil
}

// QueryRows streams sql's result via NDJSON, calling fn once per row as it
// arrives, and returns the trailer (counts and engine accounting, no Rows).
// Row cells are json.Number or string.
func (c *Client) QueryRows(sql string, opts QueryOptions, fn func(row []any) error) (*QueryResponse, error) {
	return c.QueryRowsCtx(context.Background(), sql, opts, fn)
}

// QueryRowsCtx is QueryRows with a per-call context. Retries only cover
// request setup and the status line — once rows are streaming, a mid-stream
// failure surfaces to the caller rather than silently re-reading rows.
func (c *Client) QueryRowsCtx(ctx context.Context, sql string, opts QueryOptions, fn func(row []any) error) (*QueryResponse, error) {
	resp, err := c.postQuery(ctx, sql, opts, true)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	first := true
	var trailer *QueryResponse
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		switch {
		case line[0] == '[':
			var row []any
			dec := json.NewDecoder(bytes.NewReader(line))
			dec.UseNumber()
			if err := dec.Decode(&row); err != nil {
				return nil, fmt.Errorf("decoding row: %w", err)
			}
			if fn != nil {
				if err := fn(row); err != nil {
					return nil, err
				}
			}
		case first:
			// The columns header; skip (the trailer repeats the counts).
		default:
			var t QueryResponse
			dec := json.NewDecoder(bytes.NewReader(line))
			dec.UseNumber()
			if err := dec.Decode(&t); err != nil {
				return nil, fmt.Errorf("decoding trailer: %w", err)
			}
			trailer = &t
		}
		first = false
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if trailer == nil {
		return nil, fmt.Errorf("stream ended without a trailer")
	}
	return trailer, nil
}

// Explain returns the server's plan for sql without executing it.
func (c *Client) Explain(sql string, opts QueryOptions) (string, error) {
	return c.ExplainCtx(context.Background(), sql, opts)
}

// ExplainCtx is Explain with a per-call context.
func (c *Client) ExplainCtx(ctx context.Context, sql string, opts QueryOptions) (string, error) {
	v := url.Values{"sql": {sql}}
	if opts.MaxAccuracyLoss != nil {
		v.Set("max_accuracy_loss", strconv.FormatFloat(*opts.MaxAccuracyLoss, 'g', -1, 64))
	}
	if opts.MinThroughput != 0 {
		v.Set("min_throughput", strconv.FormatFloat(opts.MinThroughput, 'g', -1, 64))
	}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/explain?"+v.Encode(), nil)
	})
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// Ingest appends a batch of rows through POST /ingest. A nil error means the
// server acknowledged the batch — under durability, that it is fsynced to the
// journal and survives any crash. 503s (load shed, recovery in progress) are
// retried per ClientOptions, which is safe: a shed or gated request touched
// no state. A transport failure after the request was sent is ambiguous —
// the batch may or may not have landed — so callers needing exactly-once
// should assign unique IDs and reconcile with a query.
func (c *Client) Ingest(rows []IngestRow) (*IngestResponse, error) {
	return c.IngestCtx(context.Background(), rows)
}

// IngestCtx is Ingest with a per-call context; its deadline is forwarded to
// the server as Deadline-Ms, bounding admission wait + trigger classification.
func (c *Client) IngestCtx(ctx context.Context, rows []IngestRow) (*IngestResponse, error) {
	blob, err := json.Marshal(IngestRequest{Rows: rows})
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		hr, err := http.NewRequest(http.MethodPost, c.base+"/ingest", bytes.NewReader(blob))
		if err != nil {
			return nil, err
		}
		hr.Header.Set("Content-Type", "application/json")
		return hr, nil
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready probes GET /readyz once, without retries: true when the server is
// serving, false while it is still recovering or draining. An unreachable
// server is an error, not "not ready" — the caller can tell a dead process
// from a recovering one.
func (c *Client) Ready(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusServiceUnavailable:
		return false, nil
	default:
		return false, fmt.Errorf("server: /readyz HTTP %d", resp.StatusCode)
	}
}

// WaitReady polls /readyz until the server reports ready or ctx ends.
// Connection errors are treated as "not yet" — the normal race of probing a
// process that has not bound its listener — so WaitReady doubles as a
// startup barrier.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		ready, err := c.Ready(ctx)
		if ready {
			return nil
		}
		if err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Stats fetches the server's counters.
func (c *Client) Stats() (*StatsResponse, error) {
	return c.StatsCtx(context.Background())
}

// StatsCtx is Stats with a per-call context.
func (c *Client) StatsCtx(ctx context.Context) (*StatsResponse, error) {
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.base+"/stats", nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
