// Archive: retrospective analysis over an archival corpus (the ARCHIVE
// deployment scenario). A labeled photo archive with metadata is searched
// with combined metadata + content predicates; the plan shows metadata
// pushdown cutting classifier invocations, and the second run hits the
// materialized predicate column.
//
//	go run ./examples/archive
package main

import (
	"fmt"
	"log"

	"tahoma/internal/core"
	"tahoma/internal/img"
	"tahoma/internal/scenario"
	"tahoma/internal/synth"
	"tahoma/internal/vdb"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The "archive": a labeled corpus of scorpion photos among others.
	cat, err := synth.CategoryByName("scorpion")
	if err != nil {
		return err
	}
	splits, err := synth.GenerateBinary(cat, synth.Options{
		BaseSize: 32, TrainN: 140, ConfigN: 60, EvalN: 160, Seed: 5, Augment: true,
	})
	if err != nil {
		return err
	}

	// 2. Initialize the predicate on a reduced grid (archives are queried
	// rarely; initialization cost amortizes over future predicates too).
	cfg := core.DefaultConfig()
	cfg.Sizes = []int{8, 16, 32}
	cfg.DeepXform.Size = 32
	fmt.Println("initializing contains_object(scorpion)...")
	sys, err := core.Initialize("contains_object(scorpion)", splits, cfg)
	if err != nil {
		return err
	}

	// 3. Build the archive DB under ARCHIVE pricing: each classified image
	// pays a full-size load plus per-representation transform costs.
	params := scenario.DefaultParams()
	params.SourceW, params.SourceH = 32, 32
	cm, err := scenario.NewAnalytic(scenario.Archive, params)
	if err != nil {
		return err
	}
	db := vdb.New(cm)

	locations := []string{"shed", "garden", "basement", "porch"}
	images := make([]*img.Image, 0, splits.Eval.Len())
	meta := make([]vdb.Metadata, 0, splits.Eval.Len())
	for i, e := range splits.Eval.Examples {
		images = append(images, e.Image)
		meta = append(meta, vdb.Metadata{
			ID:       int64(i),
			Location: locations[i%len(locations)],
			Camera:   fmt.Sprintf("trail-%d", i%3),
			TS:       int64(i * 60),
		})
	}
	if err := db.LoadCorpus(images, meta); err != nil {
		return err
	}
	if err := db.InstallPredicate("scorpion", sys, 2); err != nil {
		return err
	}

	cons := core.Constraints{MaxAccuracyLoss: 0.02}
	sql := "SELECT id, location FROM images WHERE location = 'basement' AND contains_object('scorpion')"

	plan, err := db.Explain(sql, cons)
	if err != nil {
		return err
	}
	fmt.Println("\nplan (metadata predicate runs before the classifier UDF):")
	fmt.Print(plan)

	res, err := db.Query(sql, cons)
	if err != nil {
		return err
	}
	fmt.Printf("\nfirst run: %d matches, %d classifier calls (of %d archived images)\n",
		res.Count, res.UDFCalls, len(images))
	for i, row := range res.Rows {
		if i == 5 {
			fmt.Printf("  ... %d more\n", len(res.Rows)-5)
			break
		}
		fmt.Printf("  id=%v location=%v\n", row[0], row[1])
	}

	// 4. Whole-corpus content query: results materialize, so running it
	// twice pays inference only once.
	sqlAll := "SELECT COUNT(*) FROM images WHERE contains_object('scorpion')"
	res1, err := db.Query(sqlAll, cons)
	if err != nil {
		return err
	}
	res2, err := db.Query(sqlAll, cons)
	if err != nil {
		return err
	}
	fmt.Printf("\ncorpus-wide count: %d (first run: %d classifier calls; repeat: %d)\n",
		res1.Rows[0][0].Int, res1.UDFCalls, res2.UDFCalls)
	return nil
}
