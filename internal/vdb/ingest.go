package vdb

import (
	"fmt"

	"tahoma/internal/cascade"
	"tahoma/internal/core"
	"tahoma/internal/img"
)

// TriggerPolicy controls how content predicates are pre-materialized for
// newly ingested rows — the paper's suggestion that "database triggers could
// be used to execute the TAHOMA UDFs over newly ingested data ... In such
// situations, slower processing may be tolerated for more accurate results".
type TriggerPolicy struct {
	// Enabled activates ingest-time classification for installed
	// predicates.
	Enabled bool
	// Constraints select the cascade used at ingest time. Ingest typically
	// tolerates slower, more accurate cascades than interactive queries
	// (e.g. MaxAccuracyLoss 0).
	Constraints core.Constraints
}

// SetTriggerPolicy installs the ingest-time materialization policy.
func (db *DB) SetTriggerPolicy(p TriggerPolicy) { db.trigger = p }

// Append adds rows to the corpus. Under an enabled trigger policy, every
// installed predicate classifies the new rows immediately with its
// ingest-time cascade, extending the materialized virtual columns so that
// later queries pay no inference for these rows.
func (db *DB) Append(images []*img.Image, meta []Metadata) (udfCalls int, err error) {
	if len(images) != len(meta) {
		return 0, fmt.Errorf("vdb: %d images but %d metadata rows", len(images), len(meta))
	}
	app, ok := db.corpus.(appender)
	if !ok {
		return 0, fmt.Errorf("vdb: corpus does not accept new rows")
	}
	if err := app.appendImages(images); err != nil {
		return 0, err
	}
	db.meta = append(db.meta, meta...)

	if !db.trigger.Enabled {
		// Without triggers, existing materialized columns no longer cover
		// the corpus; drop them so queries recompute.
		db.resetMaterialized()
		return 0, nil
	}

	for _, pred := range db.predicates {
		point, err := core.Select(pred.Frontier, db.trigger.Constraints)
		if err != nil {
			return udfCalls, fmt.Errorf("vdb: trigger cascade for %q: %w", pred.Category, err)
		}
		res := pred.Results[point.Index]
		key := res.Spec.ID()
		col := pred.materialized[key]
		if col == nil {
			// First materialization: the stream below backfills the whole
			// corpus (old rows included) so the column is complete.
			col = &column{}
			pred.materialized[key] = col
		}
		col.grow(db.corpus.Len())
		missing := col.invalid()
		if len(missing) == 0 {
			continue
		}
		rt, err := cascade.NewRuntime(res.Spec, pred.System.Models, pred.System.Thresholds)
		if err != nil {
			return udfCalls, err
		}
		// Newly ingested rows flow through the streaming classification
		// path: frames are batched through the execution engine as they
		// accumulate, the ONGOING/CAMERA ingest shape. udfCalls counts
		// emitted labels so work done before a mid-stream failure is still
		// reported.
		stream, err := cascade.NewStream(rt, db.execOpts, func(j int, label bool) {
			col.labels[missing[j]] = label
			col.valid[missing[j]] = true
			udfCalls++
		})
		if err != nil {
			return udfCalls, err
		}
		for _, idx := range missing {
			im, err := db.corpus.Image(idx)
			if err != nil {
				return udfCalls, fmt.Errorf("vdb: trigger load row %d: %w", idx, err)
			}
			if err := stream.Push(im); err != nil {
				return udfCalls, fmt.Errorf("vdb: trigger classify row %d: %w", idx, err)
			}
		}
		if _, err := stream.Close(); err != nil {
			return udfCalls, fmt.Errorf("vdb: trigger classify for %q: %w", pred.Category, err)
		}
	}
	return udfCalls, nil
}

// TriggerCascade reports the cascade the trigger policy would select for a
// category, for EXPLAIN-style introspection.
func (db *DB) TriggerCascade(category string) (string, error) {
	pred, ok := db.predicates[category]
	if !ok {
		return "", fmt.Errorf("vdb: no classifier installed for %q", category)
	}
	point, err := core.Select(pred.Frontier, db.trigger.Constraints)
	if err != nil {
		return "", err
	}
	res := pred.Results[point.Index]
	return res.Spec.Describe(pred.System.Models), nil
}
