package vdb

import (
	"fmt"
	"sort"
	"strings"

	"tahoma/internal/cascade"
	"tahoma/internal/core"
	"tahoma/internal/exec"
)

// contentStep is one planned content-predicate evaluation.
type contentStep struct {
	cond     ContentCond
	pred     *Predicate
	spec     cascade.Spec
	expected cascade.Result // evaluator's estimate for the chosen cascade
}

// queryPlan is the executable form of a query: metadata filters first (in
// selectivity-free textual order — the corpus is in memory, so ordering
// within the metadata set is immaterial), then content predicates, cheapest
// expected cascade first, each only over surviving rows.
type queryPlan struct {
	query   *Query
	content []contentStep
}

func (db *DB) plan(q *Query, constraints core.Constraints) (*queryPlan, error) {
	if q.Table != "images" {
		return nil, fmt.Errorf("vdb: unknown table %q (only 'images')", q.Table)
	}
	for _, c := range q.Columns {
		if _, err := metaValue(Metadata{}, c); err != nil {
			return nil, err
		}
	}
	for _, mc := range q.Meta {
		if _, err := metaValue(Metadata{}, mc.Column); err != nil {
			return nil, err
		}
	}
	plan := &queryPlan{query: q}
	for _, cc := range q.Content {
		pred, ok := db.predicates[cc.Category]
		if !ok {
			return nil, fmt.Errorf("vdb: no classifier installed for category %q (installed: %s)",
				cc.Category, strings.Join(db.predicateNames(), ", "))
		}
		point, err := core.Select(pred.Frontier, constraints)
		if err != nil {
			return nil, fmt.Errorf("vdb: selecting cascade for %q: %w", cc.Category, err)
		}
		res := pred.Results[point.Index]
		plan.content = append(plan.content, contentStep{cond: cc, pred: pred, spec: res.Spec, expected: res})
	}
	// Cheapest content predicate first: fewer expensive calls downstream.
	sort.SliceStable(plan.content, func(i, j int) bool {
		return plan.content[i].expected.AvgCost < plan.content[j].expected.AvgCost
	})
	return plan, nil
}

// describe renders the plan. Caller holds db.mu (read).
func (p *queryPlan) describe(db *DB) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scan images (%d rows)\n", len(db.meta))
	for _, mc := range p.query.Meta {
		fmt.Fprintf(&b, "  Filter: %s %s %s\n", mc.Column, mc.Op, mc.Val)
	}
	for _, cs := range p.content {
		neg := ""
		if cs.cond.Negated {
			neg = "NOT "
		}
		fmt.Fprintf(&b, "  UDF: %scontains_object(%s) via cascade [%s]\n", neg, cs.cond.Category,
			cs.spec.Describe(cs.pred.System.Models))
		fmt.Fprintf(&b, "       est. accuracy %.3f, est. throughput %.0f imgs/sec (%s)\n",
			cs.expected.Accuracy, cs.expected.Throughput, db.costModel.Name())
		if col, ok := cs.pred.materialized[cs.spec.ID()]; ok {
			if n := col.coverage(); n == len(db.meta) {
				b.WriteString("       (materialized: no inference needed)\n")
			} else if n > 0 {
				fmt.Fprintf(&b, "       (partially materialized: %d/%d rows cached)\n", n, len(db.meta))
			}
		}
	}
	if n, shares := db.fusionPreview(p.content); n >= 2 && shares {
		fmt.Fprintf(&b, "  Fused: %d content predicates share one representation-slot plan\n", n)
	}
	if p.query.Limit > 0 {
		fmt.Fprintf(&b, "  Limit %d\n", p.query.Limit)
	}
	switch {
	case p.query.CountStar:
		b.WriteString("  Project COUNT(*)\n")
	case p.query.Star:
		fmt.Fprintf(&b, "  Project %s\n", strings.Join(metaColumns, ", "))
	default:
		fmt.Fprintf(&b, "  Project %s\n", strings.Join(p.query.Columns, ", "))
	}
	return b.String()
}

// executeQuery runs a planned query against its snapshot. It touches no DB
// state: classification reads the snapshot's fixed corpus view and fills the
// snapshot's private columns, which Query merges back under the lock.
func executeQuery(plan *queryPlan, snap *querySnapshot) (*Result, error) {
	q := plan.query
	// 1. Metadata filters over all rows.
	var live []int
	for i, m := range snap.meta {
		keep := true
		for _, mc := range q.Meta {
			v, err := metaValue(m, mc.Column)
			if err != nil {
				return nil, err
			}
			ok, err := compare(v, mc.Op, mc.Val)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			live = append(live, i)
		}
	}

	// 2. Content predicates on survivors, evaluated as batched columns
	// through the execution engine. The materialized column carries
	// per-row validity (the paper's partially-materialized UDF output):
	// rows classified under a metadata filter are cached too, so a later
	// broader query only pays for the rows it has not yet seen.
	res := &Result{}
	execOpts := snap.opts
	// The snapshot's private columns; steps sharing a live column (the same
	// predicate referenced twice, e.g. X AND NOT X) share the private copy
	// too, so they are one classification, not two.
	ccols := snap.cols
	pending := 0
	seenCols := make(map[*column]bool, len(plan.content))
	for si := range plan.content {
		col := ccols[si]
		if !seenCols[col] && len(col.missing(live)) > 0 {
			pending++
		}
		seenCols[col] = true
	}

	// 2a. Fused pre-pass: when two or more predicates still have uncached
	// rows and their cascades actually share representations, run all of
	// them at once over the union of those rows through one shared
	// representation-slot plan — each distinct transform is materialized
	// once per frame for the whole query instead of once per predicate.
	// Per-cascade need masks keep predicates with different cached
	// coverage from re-classifying rows they already know, and the columns
	// end up covering every live row, so later queries (and the filtering
	// below) are all cache reads. With a single pending predicate, or with
	// fully disjoint rep grids (nothing to share, so the sequential loop's
	// predicate narrowing is the better trade), execution falls back to
	// the sequential path instead.
	if pending >= 2 && !snap.fusionOff {
		// Gate on the distinct still-pending predicates only: a duplicate
		// mention of one predicate, or a fully-cached predicate whose grid
		// overlaps a pending one, must not manufacture slot sharing.
		var gateRts []*cascade.Runtime
		gateSeen := make(map[*column]bool, len(plan.content))
		for si, cs := range plan.content {
			if gateSeen[ccols[si]] || len(ccols[si].missing(live)) == 0 {
				continue
			}
			gateSeen[ccols[si]] = true
			rt, err := cascade.NewRuntime(cs.spec, cs.pred.System.Models, cs.pred.System.Thresholds)
			if err != nil {
				return nil, err
			}
			gateRts = append(gateRts, rt)
		}
		_, shares, err := fusedContentEngine(gateRts)
		if err != nil {
			return nil, err
		}
		if shares {
			// The executed engine spans every step (need masks zero out
			// duplicates) so Labels indexing stays per content step.
			rts := make([]*cascade.Runtime, len(plan.content))
			for si, cs := range plan.content {
				rt, err := cascade.NewRuntime(cs.spec, cs.pred.System.Models, cs.pred.System.Thresholds)
				if err != nil {
					return nil, err
				}
				rts[si] = rt
			}
			fe, err := cascade.FusedEngine(rts...)
			if err != nil {
				return nil, err
			}
			return executeFused(plan, snap, res, ccols, live, fe, execOpts, q)
		}
	}

	return executeSequential(plan, snap, res, ccols, live, execOpts, q)
}

// fusionPreview mirrors executeQuery's fusion gate for EXPLAIN: the number
// of distinct not-fully-materialized predicate columns, and whether the
// planned cascades share any representation slot. Coverage is judged
// against the whole corpus (EXPLAIN does not evaluate metadata filters),
// so it is the plan-time estimate of what execution will decide. Caller
// holds db.mu (read).
func (db *DB) fusionPreview(steps []contentStep) (pending int, shares bool) {
	if db.fusionOff || len(steps) < 2 {
		return 0, false
	}
	seen := make(map[string]bool, len(steps))
	rts := make([]*cascade.Runtime, 0, len(steps))
	for _, cs := range steps {
		key := cs.pred.Category + "|" + cs.spec.ID()
		if seen[key] {
			continue
		}
		seen[key] = true
		if col, ok := cs.pred.materialized[cs.spec.ID()]; ok && col.coverage() >= len(db.meta) {
			continue
		}
		rt, err := cascade.NewRuntime(cs.spec, cs.pred.System.Models, cs.pred.System.Thresholds)
		if err != nil {
			return 0, false
		}
		rts = append(rts, rt)
		pending++
	}
	if pending < 2 {
		return pending, false
	}
	_, shares, err := fusedContentEngine(rts)
	if err != nil {
		return 0, false
	}
	return pending, shares
}

// fusedContentEngine builds the fused engine over the planned runtimes and
// reports whether any representation slot is actually shared across
// cascades — the gate for taking the fused path.
func fusedContentEngine(rts []*cascade.Runtime) (*exec.Fused, bool, error) {
	fe, err := cascade.FusedEngine(rts...)
	if err != nil {
		return nil, false, err
	}
	total := 0
	for _, rt := range rts {
		eng, err := rt.Engine()
		if err != nil {
			return nil, false, err
		}
		total += len(eng.Reps())
	}
	return fe, len(fe.Reps()) < total, nil
}

// executeFused runs the fused content pre-pass — filling every predicate's
// column for every live row in one shared-representation engine run — and
// then delegates to the sequential tail, which finds nothing left to
// classify and only filters and projects.
func executeFused(plan *queryPlan, snap *querySnapshot, res *Result, ccols []*column, live []int, fe *exec.Fused, execOpts exec.Options, q *Query) (*Result, error) {
	var union []int
	for _, idx := range live {
		for si := range plan.content {
			if !ccols[si].valid[idx] {
				union = append(union, idx)
				break
			}
		}
	}
	need := make([][]bool, len(plan.content))
	fusedCols := make(map[*column]bool, len(plan.content))
	for si := range plan.content {
		need[si] = make([]bool, len(union))
		// A later step over an already-fused column classifies nothing:
		// the first step fills it for every union row.
		if !fusedCols[ccols[si]] {
			for j, idx := range union {
				need[si][j] = !ccols[si].valid[idx]
			}
			fusedCols[ccols[si]] = true
		}
	}
	frep, err := fe.Run(snap.corpus, union, need, execOpts)
	if err != nil {
		return nil, fmt.Errorf("vdb: fused content predicates: %w", err)
	}
	for si := range plan.content {
		col := ccols[si]
		for j, idx := range union {
			if need[si][j] {
				col.labels[idx] = frep.Labels[si][j]
				col.valid[idx] = true
				res.UDFCalls++
			}
		}
	}
	res.Fused = true
	res.RepsMaterialized += frep.RepsMaterialized
	res.RepHits += frep.RepHits
	if frep.HasCache {
		res.HasRepCache = true
		res.RepCache = frep.Cache
	}
	return executeSequential(plan, snap, res, ccols, live, execOpts, q)
}

// executeSequential classifies whatever is still uncached (everything when
// the fused pre-pass did not run, nothing when it did), narrows the live
// set predicate by predicate, and applies limit + projection.
func executeSequential(plan *queryPlan, snap *querySnapshot, res *Result, ccols []*column, live []int, execOpts exec.Options, q *Query) (*Result, error) {
	for si, cs := range plan.content {
		col := ccols[si]
		if missing := col.missing(live); len(missing) > 0 {
			rt, err := cascade.NewRuntime(cs.spec, cs.pred.System.Models, cs.pred.System.Thresholds)
			if err != nil {
				return nil, err
			}
			eng, err := rt.Engine()
			if err != nil {
				return nil, err
			}
			rep, err := eng.Run(snap.corpus, missing, execOpts)
			if err != nil {
				return nil, fmt.Errorf("vdb: classifying %q: %w", cs.cond.Category, err)
			}
			for j, idx := range missing {
				col.labels[idx] = rep.Labels[j]
				col.valid[idx] = true
			}
			res.UDFCalls += rep.Frames
			res.RepsMaterialized += rep.RepsMaterialized
			res.RepHits += rep.RepHits
			if rep.HasCache {
				res.HasRepCache = true
				res.RepCache.Hits += rep.Cache.Hits
				res.RepCache.Misses += rep.Cache.Misses
				res.RepCache.EvictedBytes += rep.Cache.EvictedBytes
				res.RepCache.ResidentBytes = rep.Cache.ResidentBytes
			}
		}
		var next []int
		for _, idx := range live {
			if col.labels[idx] != cs.cond.Negated {
				next = append(next, idx)
			}
		}
		live = next
	}

	// 3. Limit + projection.
	if q.Limit > 0 && len(live) > q.Limit {
		live = live[:q.Limit]
	}
	res.Count = len(live)
	cols := q.Columns
	if q.Star {
		cols = metaColumns
	}
	if q.CountStar {
		res.Columns = []string{"count"}
		res.Rows = [][]Value{{{Int: int64(len(live))}}}
		return res, nil
	}
	res.Columns = cols
	for _, idx := range live {
		row := make([]Value, len(cols))
		for c, col := range cols {
			v, err := metaValue(snap.meta[idx], col)
			if err != nil {
				return nil, err
			}
			row[c] = v
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
