package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tahoma/internal/core"
	"tahoma/internal/exec"
	"tahoma/internal/img"
	"tahoma/internal/scenario"
	"tahoma/internal/synth"
	"tahoma/internal/vdb"
)

// The tests share one trained tiny system; every test builds a fresh DB.
var fixture struct {
	once   sync.Once
	err    error
	sys    *core.System
	splits synth.Splits
}

func testSystem(t *testing.T) (*core.System, synth.Splits) {
	t.Helper()
	fixture.once.Do(func() {
		cat, err := synth.CategoryByName("cloak")
		if err != nil {
			fixture.err = err
			return
		}
		fixture.splits, err = synth.GenerateBinary(cat, synth.Options{
			BaseSize: 16, TrainN: 120, ConfigN: 40, EvalN: 40, Seed: 7,
		})
		if err != nil {
			fixture.err = err
			return
		}
		fixture.sys, fixture.err = core.Initialize("cloak", fixture.splits, core.TinyConfig())
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.sys, fixture.splits
}

// buildTestDB assembles a DB over the system's eval split, with the system
// installed under two categories so separate queries share representations
// cross-query.
func buildTestDB(t *testing.T) *vdb.DB {
	t.Helper()
	sys, splits := testSystem(t)
	cm, err := scenario.NewAnalytic(scenario.Camera, scenario.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	db := vdb.New(cm)
	var images []*img.Image
	var meta []vdb.Metadata
	locations := []string{"uptown", "downtown"}
	for i, e := range splits.Eval.Examples {
		images = append(images, e.Image)
		meta = append(meta, vdb.Metadata{ID: int64(i), Location: locations[i%2], Camera: "cam-1", TS: int64(i * 10)})
	}
	if err := db.LoadCorpus(images, meta); err != nil {
		t.Fatal(err)
	}
	for _, cat := range []string{"cloak", "cloakb"} {
		if err := db.InstallPredicate(cat, sys, 2); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func startServer(t *testing.T, db *vdb.DB, opts Options) (*Server, *Client) {
	t.Helper()
	s := New(db, opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	// Retries off: admission tests count exact 503s, and retry behavior has
	// its own dedicated tests.
	return s, NewClientWith(ts.URL, ClientOptions{MaxRetries: -1})
}

func respKey(columns []string, rows [][]any, count int) string {
	return fmt.Sprintf("cols=%v count=%d rows=%v", columns, count, rows)
}

// TestServeConcurrentBitIdentical: 8 concurrent HTTP clients get results
// bit-identical to serial execution of the same queries, and the shared rep
// cache turns one client's materializations into other clients' RepHits.
func TestServeConcurrentBitIdentical(t *testing.T) {
	queries := []string{
		"SELECT id FROM images WHERE contains_object('cloak')",
		"SELECT id FROM images WHERE location = 'uptown' AND contains_object('cloak')",
		"SELECT COUNT(*) FROM images WHERE contains_object('cloakb')",
		"SELECT id FROM images WHERE NOT contains_object('cloakb')",
		"SELECT id, ts FROM images WHERE ts >= 100",
		"SELECT id FROM images WHERE contains_object('cloak') AND contains_object('cloakb')",
	}

	// Serial baseline on a fresh DB, via the engine directly.
	serialDB := buildTestDB(t)
	cons := core.Constraints{MaxAccuracyLoss: 0.05}
	want := make(map[string]string, len(queries))
	for _, sql := range queries {
		res, err := serialDB.Query(sql, cons)
		if err != nil {
			t.Fatalf("serial %q: %v", sql, err)
		}
		rows := make([][]any, len(res.Rows))
		for i, row := range res.Rows {
			rows[i] = serialRowValues(row)
		}
		want[sql] = respKey(res.Columns, rows, res.Count)
	}

	rc, err := vdb.NewSharedRepCache(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	_, client := startServer(t, buildTestDB(t), Options{MaxConcurrent: 4, RepCache: rc})

	// Warm one predicate so the concurrent phase's other-predicate queries
	// deterministically rehit its published representations.
	if _, err := client.Query(queries[0], QueryOptions{}); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(queries))
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < len(queries); i++ {
				sql := queries[(cl+i)%len(queries)]
				resp, err := client.Query(sql, QueryOptions{})
				if err != nil {
					errs <- fmt.Errorf("client %d %q: %w", cl, sql, err)
					return
				}
				// Normalize decoded rows (json.Number) to the serial shape.
				rows := make([][]any, len(resp.Rows))
				for r, row := range resp.Rows {
					rows[r] = make([]any, len(row))
					for c, v := range row {
						rows[r][c] = v
					}
				}
				got := fmt.Sprintf("cols=%v count=%d rows=%v", resp.Columns, resp.Count, rows)
				if got != want[sql] {
					errs <- fmt.Errorf("client %d %q diverged:\n got %s\nwant %s", cl, sql, got, want[sql])
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries < int64(clients*len(queries)) {
		t.Fatalf("stats counted %d queries, want >= %d", st.Queries, clients*len(queries))
	}
	if st.RepHits == 0 {
		t.Fatal("no cross-query RepHits despite the shared rep cache")
	}
	if st.SharedRepCache == nil || st.SharedRepCache.Hits == 0 {
		t.Fatalf("shared rep cache counters missing from /stats: %+v", st.SharedRepCache)
	}
	if st.Latency.Count != st.Queries || st.Latency.MeanMS <= 0 {
		t.Fatalf("latency histogram inconsistent: %+v vs %d queries", st.Latency, st.Queries)
	}
}

// serialRowValues renders a result row the way the decoded JSON rows print
// (json.Number and string both format as their literal), so the baseline and
// the HTTP path compare byte-for-byte.
func serialRowValues(row []vdb.Value) []any {
	out := make([]any, len(row))
	for i, v := range row {
		if v.IsString {
			out[i] = v.Str
		} else {
			out[i] = fmt.Sprintf("%d", v.Int)
		}
	}
	return out
}

// TestNDJSONStreaming: the streaming path yields the same rows and counts as
// the buffered path.
func TestNDJSONStreaming(t *testing.T) {
	_, client := startServer(t, buildTestDB(t), Options{})
	sql := "SELECT id, location FROM images WHERE contains_object('cloak')"
	full, err := client.Query(sql, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]any
	trailer, err := client.QueryRows(sql, QueryOptions{}, func(row []any) error {
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(full.Rows) || trailer.Count != full.Count {
		t.Fatalf("stream %d rows count=%d, buffered %d rows count=%d",
			len(rows), trailer.Count, len(full.Rows), full.Count)
	}
	for i := range rows {
		if fmt.Sprint(rows[i]) != fmt.Sprint(full.Rows[i]) {
			t.Fatalf("row %d: stream %v != buffered %v", i, rows[i], full.Rows[i])
		}
	}
	if trailer.UDFCalls != 0 {
		// The buffered query ran first and materialized the column.
		t.Fatalf("streamed repeat paid %d UDF calls", trailer.UDFCalls)
	}
}

// TestAdmissionControl: with one worker and no queue, a second concurrent
// query is rejected with 503; with a queue it waits; a queue timeout 503s.
func TestAdmissionControl(t *testing.T) {
	s, client := startServer(t, buildTestDB(t), Options{MaxConcurrent: 1, MaxQueue: -1})
	// Occupy the only worker slot directly.
	s.sem <- struct{}{}
	_, err := client.Query("SELECT COUNT(*) FROM images", QueryOptions{})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("expected 503 rejection, got %v", err)
	}
	st, _ := client.Stats()
	if st.Rejected != 1 {
		t.Fatalf("rejected counter %d, want 1", st.Rejected)
	}
	<-s.sem
	if _, err := client.Query("SELECT COUNT(*) FROM images", QueryOptions{}); err != nil {
		t.Fatalf("after release: %v", err)
	}

	// Queue timeout: a waiter that never gets a slot 503s after the bound.
	s2, client2 := startServer(t, buildTestDB(t), Options{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 50 * time.Millisecond})
	s2.sem <- struct{}{}
	t0 := time.Now()
	_, err = client2.Query("SELECT COUNT(*) FROM images", QueryOptions{})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("expected queue-timeout 503, got %v", err)
	}
	if time.Since(t0) < 50*time.Millisecond {
		t.Fatal("rejected before the queue timeout elapsed")
	}
	<-s2.sem
}

// TestExplainStatsHealth covers the introspection endpoints end to end.
func TestExplainStatsHealth(t *testing.T) {
	db := buildTestDB(t)
	_, client := startServer(t, db, Options{})
	plan, err := client.Explain("SELECT id FROM images WHERE contains_object('cloak')", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, wantSub := range []string{"Scan images (40 rows)", "contains_object(cloak)"} {
		if !strings.Contains(plan, wantSub) {
			t.Fatalf("explain missing %q:\n%s", wantSub, plan)
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 40 || len(st.Predicates) != 2 {
		t.Fatalf("stats: rows=%d predicates=%v", st.Rows, st.Predicates)
	}
	resp, err := http.Get(client.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	// Bad SQL is a 400 with a JSON error, not a 500.
	if _, err := client.Query("DELETE FROM images", QueryOptions{}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("expected 400 for bad SQL, got %v", err)
	}
	// Context cancellation while queued surfaces as a client error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, client.base+"/query?sql=SELECT+COUNT(*)+FROM+images", nil)
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("cancelled request did not error")
	}
}

// TestStatsMaterialization: repeat queries over HTTP flip to the bitmap
// path, and GET /stats reports the materialization layer (coverage, hit and
// miss counters, usage table) plus the uniform cache footprint sum that
// includes the label columns.
func TestStatsMaterialization(t *testing.T) {
	db := buildTestDB(t)
	rc, err := vdb.NewSharedRepCache(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	_, client := startServer(t, db, Options{RepCache: rc})

	const sql = "SELECT id FROM images WHERE contains_object('cloak')"
	cold, err := client.Query(sql, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Bitmap || cold.UDFCalls == 0 {
		t.Fatalf("cold query: bitmap=%v udf=%d", cold.Bitmap, cold.UDFCalls)
	}
	warm, err := client.Query(sql, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Bitmap || warm.UDFCalls != 0 || warm.MatHits != 40 {
		t.Fatalf("warm query: bitmap=%v udf=%d mat_hits=%d, want bitmap with 40 hits", warm.Bitmap, warm.UDFCalls, warm.MatHits)
	}
	if respKey(cold.Columns, cold.Rows, cold.Count) != respKey(warm.Columns, warm.Rows, warm.Count) {
		t.Fatal("bitmap path changed the result")
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	m := st.Materialization
	if m.Mode != "on" || m.Columns != 1 || m.CoveredRows != 40 {
		t.Fatalf("materialization stats: %+v", m)
	}
	if m.Hits < 40 || m.Misses == 0 {
		t.Fatalf("lookup counters: hits=%d misses=%d", m.Hits, m.Misses)
	}
	if len(m.Usage) == 0 || m.Usage[0].Category != "cloak" || m.Usage[0].Touches < 2 {
		t.Fatalf("usage table: %+v", m.Usage)
	}
	// The footprint sum spans all caches uniformly; the label column alone
	// guarantees it is non-zero.
	if st.CacheBytes < m.Bytes || m.Bytes == 0 {
		t.Fatalf("cache_bytes=%d materialized bytes=%d", st.CacheBytes, m.Bytes)
	}
}

// TestQuantStatsFlow: a content query over calibrated models reports its
// int8 accounting on the response, /stats carries the cumulative counters,
// the mode and the per-model calibration records, and -quantize=off zeroes
// the whole path while returning the same rows.
func TestQuantStatsFlow(t *testing.T) {
	db := buildTestDB(t)
	db.SetMaterialization(vdb.MatOff) // every query classifies: both runs exercise scoring
	_, client := startServer(t, db, Options{})
	sql := "SELECT id FROM images WHERE contains_object('cloak')"

	auto, err := client.Query(sql, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if auto.QuantScored == 0 {
		t.Fatalf("QuantAuto query reported no trusted int8 scores: %+v", auto)
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	q := st.Quantization
	if q.Mode != "auto" {
		t.Fatalf("mode = %q, want auto", q.Mode)
	}
	if q.QuantScored != int64(auto.QuantScored) || q.QuantFallbacks != int64(auto.QuantFallbacks) {
		t.Fatalf("stats counters %d/%d, query reported %d/%d",
			q.QuantScored, q.QuantFallbacks, auto.QuantScored, auto.QuantFallbacks)
	}
	if len(q.Models) == 0 {
		t.Fatal("no armed models in the quantization block")
	}
	for _, m := range q.Models {
		if m.GuardBand <= m.MaxErr || m.Int8WeightBytes <= 0 || m.Int8WeightBytes >= m.F32WeightBytes {
			t.Fatalf("model record %+v: band must exceed max_err and int8 weights must shrink", m)
		}
	}

	db.SetQuantization(exec.QuantOff)
	off, err := client.Query(sql, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if off.QuantScored != 0 || off.QuantFallbacks != 0 {
		t.Fatalf("QuantOff query counted int8 work: %+v", off)
	}
	if len(off.Rows) != len(auto.Rows) {
		t.Fatalf("row counts differ off=%d auto=%d", len(off.Rows), len(auto.Rows))
	}
	for i := range off.Rows {
		if fmt.Sprint(off.Rows[i]) != fmt.Sprint(auto.Rows[i]) {
			t.Fatalf("row %d differs: off=%v auto=%v", i, off.Rows[i], auto.Rows[i])
		}
	}
}
