package experiments

import (
	"fmt"
	"io"
	"time"

	"tahoma/internal/cascade"
	"tahoma/internal/core"
	"tahoma/internal/img"
	"tahoma/internal/pareto"
	"tahoma/internal/scenario"
	"tahoma/internal/synth"
)

// Suite holds the initialized TAHOMA systems for every configured predicate.
// Initialization (training the design space) happens once; every experiment
// reuses the systems with different cost models and cascade sets, exactly as
// the paper's evaluation reuses its 360 models per predicate.
type Suite struct {
	Config  Config
	Systems []*core.System // parallel to Config.Predicates
	Splits  []synth.Splits
	InitDur time.Duration
}

// NewSuite generates the corpora and initializes one TAHOMA system per
// predicate. progress (optional) is called after each predicate completes.
func NewSuite(cfg Config, progress func(done, total int, predicate string)) (*Suite, error) {
	if len(cfg.Predicates) == 0 {
		return nil, fmt.Errorf("experiments: no predicates configured")
	}
	s := &Suite{Config: cfg}
	start := time.Now()
	for i, name := range cfg.Predicates {
		cat, err := synth.CategoryByName(name)
		if err != nil {
			return nil, err
		}
		splits, err := synth.GenerateBinary(cat, synth.Options{
			BaseSize: cfg.BaseSize,
			TrainN:   cfg.TrainN,
			ConfigN:  cfg.ConfigN,
			EvalN:    cfg.EvalN,
			Seed:     cfg.Seed + int64(i)*1000,
			Augment:  cfg.Augment,
		})
		if err != nil {
			return nil, err
		}
		cc := cfg.Core
		cc.Workers = cfg.Workers
		sys, err := core.Initialize("contains_object("+name+")", splits, cc)
		if err != nil {
			return nil, fmt.Errorf("experiments: initializing %s: %w", name, err)
		}
		s.Systems = append(s.Systems, sys)
		s.Splits = append(s.Splits, splits)
		if progress != nil {
			progress(i+1, len(cfg.Predicates), name)
		}
	}
	s.InitDur = time.Since(start)
	return s, nil
}

// costModel builds the deterministic analytic cost model for a scenario.
func (s *Suite) costModel(kind scenario.Kind) scenario.CostModel {
	cm, err := scenario.NewAnalytic(kind, s.Config.Params)
	if err != nil {
		// Params are validated at suite construction; reaching this is a
		// programming error.
		panic(err)
	}
	return cm
}

// evaluated is one predicate's cascade set under one cost model.
type evaluated struct {
	results  []cascade.Result
	points   []pareto.Point
	frontier []pareto.Point
}

// evaluate runs the standard cascade set for system i under the scenario.
func (s *Suite) evaluate(i int, kind scenario.Kind) (evaluated, error) {
	sys := s.Systems[i]
	results, err := sys.EvaluateCascades(sys.BuildOptions(s.Config.MaxDepth), s.costModel(kind))
	if err != nil {
		return evaluated{}, err
	}
	pts := core.Points(results)
	return evaluated{results: results, points: pts, frontier: pareto.Frontier(pts)}, nil
}

// evaluateOptions evaluates an explicit cascade set for system i.
func (s *Suite) evaluateOptions(i int, opts cascade.BuildOptions, kind scenario.Kind) (evaluated, error) {
	sys := s.Systems[i]
	results, err := sys.EvaluateCascades(opts, s.costModel(kind))
	if err != nil {
		return evaluated{}, err
	}
	pts := core.Points(results)
	return evaluated{results: results, points: pts, frontier: pareto.Frontier(pts)}, nil
}

// deepResult returns the reference classifier (ResNet50 analogue) evaluated
// as a single-model cascade for system i under the scenario.
func (s *Suite) deepResult(i int, kind scenario.Kind) cascade.Result {
	sys := s.Systems[i]
	spec := cascade.Spec{Depth: 1}
	spec.L[0] = cascade.LevelRef{Model: int32(sys.DeepIdx), Thresh: cascade.Final}
	ct := sys.Evaluator.CompileCosts(s.costModel(kind))
	return sys.Evaluator.Evaluate(spec, ct, sys.Evaluator.NewScratch())
}

// baselineOptions reproduces the paper's Baseline cascade set for system i:
// two-level cascades whose first level is a full-resolution, full-color
// model and whose terminator is the expensive reference classifier — the
// NoScope-style design space without input transformations — plus the
// reference classifier alone.
func (s *Suite) baselineOptions(i int) cascade.BuildOptions {
	sys := s.Systems[i]
	var fullRes []int
	for idx, m := range sys.Models {
		if idx == sys.DeepIdx {
			continue
		}
		if m.Xform.Size == s.Config.BaseSize && m.Xform.Color == img.RGB {
			fullRes = append(fullRes, idx)
		}
	}
	return cascade.BuildOptions{
		LevelModels: fullRes,
		FinalModels: []int{sys.DeepIdx},
		NumThresh:   len(sys.Config.PrecisionTargets),
		MaxDepth:    1,
		AppendDeep:  true,
		DeepModel:   sys.DeepIdx,
	}
}

// RunAll executes every experiment in paper order, writing rows to w.
func (s *Suite) RunAll(w io.Writer) error {
	s.TableII(w)
	if _, err := s.Figure4(w); err != nil {
		return fmt.Errorf("figure 4: %w", err)
	}
	if _, err := s.Figure5(w); err != nil {
		return fmt.Errorf("figure 5: %w", err)
	}
	if _, err := s.Figure6(w); err != nil {
		return fmt.Errorf("figure 6: %w", err)
	}
	if _, err := s.Figure7(w); err != nil {
		return fmt.Errorf("figure 7: %w", err)
	}
	if _, err := s.Figure8(w); err != nil {
		return fmt.Errorf("figure 8: %w", err)
	}
	if _, err := s.Figure9(w); err != nil {
		return fmt.Errorf("figure 9: %w", err)
	}
	if _, err := s.TableIII(w); err != nil {
		return fmt.Errorf("table III: %w", err)
	}
	if _, err := s.Figure10(w); err != nil {
		return fmt.Errorf("figure 10: %w", err)
	}
	if _, err := s.Figure11(w); err != nil {
		return fmt.Errorf("figure 11: %w", err)
	}
	return nil
}
