// Package profile implements TAHOMA's cost profiler (Figure 2): it measures
// the real t_load, t_transform and t_infer of every model and representation
// on the system the query will actually run on, producing the inputs for
// scenario.Profiled cost models. Measurements use real file I/O in a caller
// supplied directory and real CNN inference, averaged over a sample of
// corpus images.
package profile

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tahoma/internal/img"
	"tahoma/internal/model"
	"tahoma/internal/scenario"
	"tahoma/internal/xform"
)

// Measurements holds per-component average costs in seconds.
type Measurements struct {
	SourceLoad   float64            // load+decode one full-size image from disk
	RepLoad      map[string]float64 // transform ID → load pre-transformed representation
	RepTransform map[string]float64 // transform ID → materialize representation from an in-memory source
	Infer        map[string]float64 // model ID → one inference
}

// Options controls profiling effort.
type Options struct {
	// Dir is where probe files are written; empty uses a temp directory
	// that is removed afterwards.
	Dir string
	// SampleImages caps how many of the provided images are exercised
	// (default 8).
	SampleImages int
	// MinIters is the minimum timing loop count per measurement (default 3).
	MinIters int
}

func (o *Options) setDefaults() {
	if o.SampleImages == 0 {
		o.SampleImages = 8
	}
	if o.MinIters == 0 {
		o.MinIters = 3
	}
}

// Measure profiles every distinct transform among the models plus the
// inference cost of each model, using sources as representative inputs.
func Measure(models []*model.Model, sources []*img.Image, opts Options) (Measurements, error) {
	opts.setDefaults()
	if len(models) == 0 {
		return Measurements{}, fmt.Errorf("profile: no models to measure")
	}
	if len(sources) == 0 {
		return Measurements{}, fmt.Errorf("profile: no sample images")
	}
	if len(sources) > opts.SampleImages {
		sources = sources[:opts.SampleImages]
	}
	dir := opts.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "tahoma-profile-*")
		if err != nil {
			return Measurements{}, fmt.Errorf("profile: creating probe dir: %w", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}

	m := Measurements{
		RepLoad:      make(map[string]float64),
		RepTransform: make(map[string]float64),
		Infer:        make(map[string]float64),
	}

	// Distinct transforms among the models.
	xforms := make(map[string]xform.Transform)
	for _, mod := range models {
		xforms[mod.Xform.ID()] = mod.Xform
	}

	// --- t_load: full-size source ---
	srcPath := filepath.Join(dir, "source.timg")
	if err := writeTIMG(srcPath, sources[0]); err != nil {
		return Measurements{}, err
	}
	src, err := timeLoad(srcPath, opts.MinIters)
	if err != nil {
		return Measurements{}, err
	}
	m.SourceLoad = src

	// --- t_load per representation (ONGOING) ---
	for id, t := range xforms {
		rep := t.Apply(sources[0])
		p := filepath.Join(dir, "rep-"+sanitize(id)+".timg")
		if err := writeTIMG(p, rep); err != nil {
			return Measurements{}, err
		}
		sec, err := timeLoad(p, opts.MinIters)
		if err != nil {
			return Measurements{}, err
		}
		m.RepLoad[id] = sec
	}

	// --- t_transform per representation (ARCHIVE/CAMERA) ---
	for id, t := range xforms {
		iters := opts.MinIters
		start := time.Now()
		for i := 0; i < iters; i++ {
			for _, s := range sources {
				_ = t.Apply(s)
			}
		}
		m.RepTransform[id] = time.Since(start).Seconds() / float64(iters*len(sources))
	}

	// --- t_infer per model ---
	for _, mod := range models {
		reps := make([]*img.Image, len(sources))
		for i, s := range sources {
			reps[i] = mod.Xform.Apply(s)
		}
		// Warm the scratch buffers outside the timed region.
		if _, err := mod.Score(reps[0]); err != nil {
			return Measurements{}, fmt.Errorf("profile: %w", err)
		}
		iters := opts.MinIters
		start := time.Now()
		for i := 0; i < iters; i++ {
			for _, r := range reps {
				if _, err := mod.Score(r); err != nil {
					return Measurements{}, fmt.Errorf("profile: %w", err)
				}
			}
		}
		m.Infer[mod.ID()] = time.Since(start).Seconds() / float64(iters*len(reps))
	}
	return m, nil
}

// CostModel assembles a scenario.Profiled cost model for the given scenario
// from the measurements.
func (m Measurements) CostModel(kind scenario.Kind) *scenario.Profiled {
	return &scenario.Profiled{
		Scenario:  kind,
		Source:    m.SourceLoad,
		Loads:     m.RepLoad,
		Transform: m.RepTransform,
		Infer:     m.Infer,
	}
}

func writeTIMG(path string, im *img.Image) error {
	var buf bytes.Buffer
	if err := img.Encode(&buf, im); err != nil {
		return fmt.Errorf("profile: encoding probe image: %w", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("profile: writing probe image: %w", err)
	}
	return nil
}

// timeLoad measures reading and decoding one TIMG file. It measures through
// the OS page cache, which matches steady-state query behavior on a box
// whose working set is warm; cold-cache costs are the analytic model's job.
func timeLoad(path string, iters int) (float64, error) {
	// Warm up once and validate.
	if err := loadOnce(path); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := loadOnce(path); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(iters), nil
}

func loadOnce(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("profile: opening probe: %w", err)
	}
	defer f.Close()
	if _, err := img.Decode(f); err != nil {
		return fmt.Errorf("profile: decoding probe %s: %w", path, err)
	}
	return nil
}

func sanitize(id string) string {
	out := []byte(id)
	for i, c := range out {
		if c == '/' {
			out[i] = '_'
		}
	}
	return string(out)
}
