package xform

import (
	"math/rand"
	"testing"

	"tahoma/internal/img"
)

// TestApplyIntoMatchesApply: pooled-buffer materialization must be
// bit-identical to the allocating path, reuse matching buffers, and recover
// from mismatched ones.
func TestApplyIntoMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := img.New(24, 24, img.RGB)
	for i := range src.Pix {
		src.Pix[i] = rng.Float32()
	}
	transforms := []Transform{
		{Size: 8, Color: img.Gray},
		{Size: 16, Color: img.RGB},
		{Size: 12, Color: img.Red},
		{Size: 24, Color: img.Blue}, // same-size path
	}
	for _, tr := range transforms {
		want := tr.Apply(src)
		var dst, proj *img.Image
		for round := 0; round < 3; round++ {
			var got *img.Image
			got, proj = tr.ApplyInto(dst, src, proj)
			if got.W != want.W || got.H != want.H || got.Mode != want.Mode {
				t.Fatalf("%s: ApplyInto geometry %dx%d/%v, want %dx%d/%v", tr.ID(), got.W, got.H, got.Mode, want.W, want.H, want.Mode)
			}
			for i := range want.Pix {
				if got.Pix[i] != want.Pix[i] {
					t.Fatalf("%s round %d: pixel %d = %v, Apply = %v", tr.ID(), round, i, got.Pix[i], want.Pix[i])
				}
			}
			if round > 0 && got != dst {
				t.Fatalf("%s round %d: matching buffer was not reused", tr.ID(), round)
			}
			dst = got
		}
		// A mismatched buffer must be replaced, not written through.
		wrong := img.New(3, 3, img.Gray)
		got, _ := tr.ApplyInto(wrong, src, nil)
		if got == wrong {
			t.Fatalf("%s: mismatched buffer reused", tr.ID())
		}
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("%s with mismatched buffer: pixel %d differs", tr.ID(), i)
			}
		}
	}
}
