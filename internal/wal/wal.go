// Package wal is TAHOMA's write-ahead ingest journal: an append-only,
// length+CRC32-framed, fsync-on-commit log that makes the DB's write side
// (Append batches and materialized-label merges) durable. It is the write-
// side twin of the matstore's TAHMAT2 read discipline — where TAHMAT2 makes a
// *load* fail closed on any damage, the WAL makes a *crash* recover open: the
// reader walks the journal, truncates at the first bad frame (a torn tail is
// what power loss legitimately produces), and replays the clean prefix, so a
// process killed at any instant restarts into a state bit-identical to some
// prefix of the acknowledged writes — never corrupt, never partially applied.
//
// On-disk layout of a journal directory (the checkpoint file written by the
// DB lives alongside, owned by the vdb layer):
//
//	wal-%016x.seg — segments, named by the sequence number of their first
//	                record; each starts with the magic "TAHWAL1\n" and holds
//	                frames [len u32][payload][crc32 u32] where payload is
//	                [seq u64][type u8][data].
//
// Append buffers; Sync flushes and fsyncs; Commit is Append+Sync — the
// acknowledged-write path. Records whose loss only costs recomputation
// (label-merge journal entries) ride Append and become durable with the next
// Commit or Sync, in order, because the buffer drains sequentially.
//
// Segment rotation bounds recovery work and makes checkpoint garbage
// collection a file delete: TruncateBefore(seq) removes whole segments whose
// records all predate the newest checkpoint.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"tahoma/internal/faults"
)

const (
	segMagic = "TAHWAL1\n"
	// segPrefix/segSuffix frame the %016x first-sequence in segment names.
	segPrefix = "wal-"
	segSuffix = ".seg"
	// maxFrame bounds one record so a corrupt length cannot drive a giant
	// allocation during recovery.
	maxFrame = 1 << 28
	// frameOverhead is the per-frame framing cost: length and CRC32 words.
	frameOverhead = 8
	// payloadHeader is seq (8) + type (1).
	payloadHeader = 9
)

var crcTable = crc32.IEEETable

// ErrTruncate, returned from a Replay callback, stops the replay and
// truncates the journal at the offending record — the escape hatch for a
// record that is internally valid but inconsistent with recovered state
// (e.g. an append whose frames never reached the representation store).
// Everything from that record on is discarded, so subsequent appends extend a
// consistent prefix.
var ErrTruncate = errors.New("wal: truncate journal here")

// Options configure a Log.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the current one exceeds
	// this size (0 = 8 MiB). Rotation happens at record boundaries.
	SegmentBytes int64
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 8 << 20
	}
	return o.SegmentBytes
}

// Record is one journal entry as seen by Replay.
type Record struct {
	Seq  uint64
	Type byte
	Data []byte
}

// RecoverInfo reports what Open found and fixed.
type RecoverInfo struct {
	// Segments and Records count the valid journal contents.
	Segments int
	Records  int64
	// TruncatedBytes is how much torn tail Open cut: bytes after the last
	// valid frame (a partially written frame, a bad checksum, or segments
	// orphaned past a torn one).
	TruncatedBytes int64
	// NextSeq is the sequence number the next appended record will carry.
	NextSeq uint64
}

// Stats is a point-in-time accounting snapshot.
type Stats struct {
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// Records counts appends since Open; Commits counts fsyncs.
	Records int64 `json:"records"`
	Commits int64 `json:"commits"`
}

// Log is an open journal. Safe for concurrent use; Append order is the
// replay order.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	segStart uint64 // first seq in the current segment
	segSize  int64  // bytes written to the current segment (including magic)
	nextSeq  uint64
	records  int64
	commits  int64
	// failed latches the first write/sync error: once the journal cannot
	// guarantee durability it refuses further appends instead of silently
	// losing acknowledged writes.
	failed error
}

// Open opens (creating if necessary) the journal in dir, repairs any torn
// tail — truncating at the first bad frame and deleting segments beyond it —
// and positions the log for appending.
func Open(dir string, opts Options) (*Log, RecoverInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoverInfo{}, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, RecoverInfo{}, err
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 0}
	var info RecoverInfo

	// Walk segments in order, validating frames. The first damage truncates
	// its segment there and deletes every later segment: a torn frame means
	// the crash happened while writing it, so nothing after it was ever
	// acknowledged.
	for i, seg := range segs {
		valid, records, lastSeq, total, serr := scanSegment(filepath.Join(dir, seg.name))
		if serr != nil {
			return nil, RecoverInfo{}, serr
		}
		if records > 0 {
			l.nextSeq = lastSeq + 1
		} else if l.nextSeq < seg.start {
			l.nextSeq = seg.start
		}
		info.Records += records
		if valid < total {
			info.TruncatedBytes += total - valid
			if err := os.Truncate(filepath.Join(dir, seg.name), valid); err != nil {
				return nil, RecoverInfo{}, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.name, err)
			}
			for _, later := range segs[i+1:] {
				p := filepath.Join(dir, later.name)
				if fi, err := os.Stat(p); err == nil {
					info.TruncatedBytes += fi.Size()
				}
				if err := os.Remove(p); err != nil {
					return nil, RecoverInfo{}, fmt.Errorf("wal: removing orphaned segment %s: %w", later.name, err)
				}
			}
			segs = segs[:i+1]
			break
		}
	}
	info.Segments = len(segs)
	info.NextSeq = l.nextSeq

	// Reopen the last segment for appending, or lazily create the first on
	// the first Append (an empty journal stays an empty directory).
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		f, err := os.OpenFile(filepath.Join(dir, last.name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, RecoverInfo{}, fmt.Errorf("wal: reopening %s: %w", last.name, err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, RecoverInfo{}, err
		}
		l.f = f
		l.segStart = last.start
		l.segSize = fi.Size()
	}
	return l, info, nil
}

type segment struct {
	name  string
	start uint64
}

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var start uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%016x", &start); err != nil {
			return nil, fmt.Errorf("wal: unparseable segment name %q", name)
		}
		segs = append(segs, segment{name: name, start: start})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

func segName(start uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix)
}

// scanSegment walks one segment's frames. It returns the byte offset of the
// end of the last valid frame, the record count, the last record's seq, and
// the file's total size. Damage — bad magic byte count, torn frame, checksum
// mismatch — ends the scan at the last valid offset; it is never an error.
func scanSegment(path string) (valid int64, records int64, lastSeq uint64, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	total = fi.Size()

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		// A segment without a full, correct magic is all tail: the crash hit
		// during its creation.
		return 0, 0, 0, total, nil
	}
	valid = int64(len(segMagic))
	r := &countReader{r: f, n: valid}
	for {
		payload, ok := readFrame(r)
		if !ok {
			return valid, records, lastSeq, total, nil
		}
		lastSeq = binary.LittleEndian.Uint64(payload[:8])
		records++
		valid = r.n
	}
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readFrame reads one [len][payload][crc] frame; ok is false on any damage
// (truncation, oversize length, checksum mismatch, runt payload).
func readFrame(r io.Reader) (payload []byte, ok bool) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < payloadHeader || n > maxFrame {
		return nil, false
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, false
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, false
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[:]) {
		return nil, false
	}
	return payload, true
}

// NextSeq returns the sequence number the next appended record will carry.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Err returns the latched failure, if any. A failed journal refuses every
// further append (fail-stop), so callers can check Err before mutating state
// they would otherwise be unable to journal.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Append journals one record without forcing it to disk: it is durable after
// the next Sync/Commit (appends drain in order, so a later Commit covers it).
// Use for records whose loss is recomputable; acknowledged writes go through
// Commit.
func (l *Log) Append(typ byte, data []byte) (seq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(typ, data)
}

// Commit journals one record and fsyncs the segment: when it returns nil the
// record — and every record appended before it — is durable.
func (l *Log) Commit(typ byte, data []byte) (seq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq, err = l.appendLocked(typ, data)
	if err != nil {
		return 0, err
	}
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	return seq, nil
}

// Sync fsyncs the current segment, making every appended record durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.failed
	}
	return l.syncLocked()
}

func (l *Log) appendLocked(typ byte, data []byte) (uint64, error) {
	if l.failed != nil {
		return 0, l.failed
	}
	if l.f == nil || l.segSize >= l.opts.segmentBytes() {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := l.nextSeq
	payload := make([]byte, payloadHeader+len(data))
	binary.LittleEndian.PutUint64(payload[:8], seq)
	payload[8] = typ
	copy(payload[payloadHeader:], data)

	frame := make([]byte, 4+len(payload)+4)
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	copy(frame[4:], payload)
	binary.LittleEndian.PutUint32(frame[4+len(payload):], crc32.Checksum(payload, crcTable))

	// Fault points: a failed write latches the journal into fail-stop — the
	// record was not acknowledged and later records must not leapfrog it. A
	// short write additionally leaves a torn frame on disk, which the next
	// Open truncates.
	if err := faults.Fire(faults.FSWriteError); err != nil {
		l.failed = fmt.Errorf("wal: append: %w", err)
		return 0, l.failed
	}
	if faults.Firing(faults.FSShortWrite) {
		_, _ = l.f.Write(frame[:len(frame)/2])
		l.failed = fmt.Errorf("wal: append: short write (injected)")
		return 0, l.failed
	}
	if _, err := l.f.Write(frame); err != nil {
		l.failed = fmt.Errorf("wal: append: %w", err)
		return 0, l.failed
	}
	l.segSize += int64(len(frame))
	l.nextSeq = seq + 1
	l.records++
	return seq, nil
}

func (l *Log) syncLocked() error {
	if l.failed != nil {
		return l.failed
	}
	// The crash points bracket the fsync: before-sync is the strictest crash
	// (buffered frames may or may not have reached disk, whole or torn);
	// after-sync guarantees the commit survived. Both are subprocess-only
	// chaos hooks — they kill the process by design.
	if faults.Firing(faults.FSCrashBeforeSync) {
		os.Exit(3)
	}
	if err := faults.Fire(faults.FSSyncError); err != nil {
		l.failed = fmt.Errorf("wal: sync: %w", err)
		return l.failed
	}
	if err := l.f.Sync(); err != nil {
		l.failed = fmt.Errorf("wal: sync: %w", err)
		return l.failed
	}
	if faults.Firing(faults.FSCrashAfterSync) {
		os.Exit(3)
	}
	l.commits++
	return nil
}

// rotateLocked closes the current segment (fsynced) and starts a fresh one,
// fsyncing the directory so the new segment's name survives a crash.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			l.failed = fmt.Errorf("wal: rotating: %w", err)
			return l.failed
		}
		if err := l.f.Close(); err != nil {
			l.failed = fmt.Errorf("wal: rotating: %w", err)
			return l.failed
		}
		l.f = nil
	}
	name := segName(l.nextSeq)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		l.failed = fmt.Errorf("wal: creating segment %s: %w", name, err)
		return l.failed
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		l.failed = fmt.Errorf("wal: writing segment magic: %w", err)
		return l.failed
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		l.failed = err
		return l.failed
	}
	l.f = f
	l.segStart = l.nextSeq
	l.segSize = int64(len(segMagic))
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing dir: %w", err)
	}
	return nil
}

// Replay streams every record with Seq >= fromSeq, in order, to fn. A fn
// error aborts the replay; returning ErrTruncate additionally truncates the
// journal at that record (see ErrTruncate) and ends the replay cleanly.
// Replay reads the files as repaired by Open; call it before appending.
func (l *Log) Replay(fromSeq uint64, fn func(Record) error) (replayed int64, err error) {
	l.mu.Lock()
	dir := l.dir
	segs, err := listSegments(dir)
	if err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.mu.Unlock()

	for _, seg := range segs {
		path := filepath.Join(dir, seg.name)
		f, err := os.Open(path)
		if err != nil {
			return replayed, fmt.Errorf("wal: replay opening %s: %w", seg.name, err)
		}
		magic := make([]byte, len(segMagic))
		if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
			f.Close()
			continue
		}
		r := &countReader{r: f, n: int64(len(segMagic))}
		for {
			frameStart := r.n
			payload, ok := readFrame(r)
			if !ok {
				break
			}
			rec := Record{
				Seq:  binary.LittleEndian.Uint64(payload[:8]),
				Type: payload[8],
				Data: payload[payloadHeader:],
			}
			if rec.Seq < fromSeq {
				continue
			}
			if err := fn(rec); err != nil {
				f.Close()
				if errors.Is(err, ErrTruncate) {
					return replayed, l.truncateAt(seg, frameStart, segs)
				}
				return replayed, err
			}
			replayed++
		}
		f.Close()
	}
	return replayed, nil
}

// truncateAt cuts the journal at byte offset off of segment seg and removes
// every later segment, then re-derives the append position.
func (l *Log) truncateAt(seg segment, off int64, segs []segment) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	if err := os.Truncate(filepath.Join(l.dir, seg.name), off); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", seg.name, err)
	}
	drop := false
	for _, s := range segs {
		if s.start == seg.start {
			drop = true
			continue
		}
		if drop {
			if err := os.Remove(filepath.Join(l.dir, s.name)); err != nil {
				return fmt.Errorf("wal: removing %s: %w", s.name, err)
			}
		}
	}
	// Re-derive nextSeq from the surviving tail and reopen for append.
	valid, records, lastSeq, _, err := scanSegment(filepath.Join(l.dir, seg.name))
	if err != nil {
		return err
	}
	_ = valid
	if records > 0 {
		l.nextSeq = lastSeq + 1
	} else {
		l.nextSeq = seg.start
	}
	f, err := os.OpenFile(filepath.Join(l.dir, seg.name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopening %s: %w", seg.name, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segStart = seg.start
	l.segSize = fi.Size()
	return nil
}

// TruncateBefore garbage-collects segments made obsolete by a checkpoint:
// every segment whose records all have Seq < seq is deleted (the current
// write segment is always kept). Returns the bytes reclaimed.
func (l *Log) TruncateBefore(seq uint64) (reclaimed int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	for i, seg := range segs {
		// A segment's records are all < seq iff the next segment starts at or
		// below seq. The last segment (the write head) is never deleted.
		if i+1 >= len(segs) || segs[i+1].start > seq || seg.start == l.segStart {
			break
		}
		p := filepath.Join(l.dir, seg.name)
		if fi, err := os.Stat(p); err == nil {
			reclaimed += fi.Size()
		}
		if err := os.Remove(p); err != nil {
			return reclaimed, fmt.Errorf("wal: removing %s: %w", seg.name, err)
		}
	}
	if reclaimed > 0 {
		if err := syncDir(l.dir); err != nil {
			return reclaimed, err
		}
	}
	return reclaimed, nil
}

// Stats snapshots the journal's accounting.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{Records: l.records, Commits: l.commits}
	segs, err := listSegments(l.dir)
	if err != nil {
		return st
	}
	st.Segments = len(segs)
	for _, seg := range segs {
		if fi, err := os.Stat(filepath.Join(l.dir, seg.name)); err == nil {
			st.Bytes += fi.Size()
		}
	}
	return st
}

// Close flushes and closes the journal. The log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
