// Package repstore is the physical representation store: the on-disk
// substrate behind the ARCHIVE and ONGOING deployment scenarios. A store
// holds the full-size source images plus any number of pre-materialized
// representations (one fixed-record-size data file per transform), so that a
// query can load exactly the physical representation its chosen cascade
// wants, without touching the full-size source.
//
// Layout of a store directory:
//
//	manifest.json      — geometry, transform list, record counts
//	source.dat         — fixed-size TIMG records of full-size images
//	rep-<id>.dat       — fixed-size TIMG records per transform
//
// Fixed record sizes make random access an offset multiplication and make
// truncation detectable on open (file size must be count × record size).
package repstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"tahoma/internal/faults"
	"tahoma/internal/img"
	"tahoma/internal/xform"
)

// ErrCorrupt is returned (wrapped) when a store fails validation.
var ErrCorrupt = errors.New("repstore: corrupt store")

// Manifest describes a store directory.
type Manifest struct {
	Version    int      `json:"version"`
	BaseW      int      `json:"base_w"`
	BaseH      int      `json:"base_h"`
	Transforms []string `json:"transforms"` // transform IDs with materialized reps
	Count      int      `json:"count"`      // ingested images
}

const manifestName = "manifest.json"

// Store is an open representation store, safe for concurrent use: records
// are read with ReadAt and the record count is guarded, so readers may
// overlap an in-flight Ingest — they simply do not see rows appended after
// they checked Count.
type Store struct {
	dir    string
	xforms []xform.Transform
	source *os.File
	reps   map[string]*os.File

	// mu guards manifest (Count grows on ingest). Data files are append-
	// only with fixed record sizes: a record below Count is complete, so
	// ReadAt needs no lock of its own.
	mu       sync.RWMutex
	manifest Manifest
}

// Create initializes a new store in dir (which must be empty or absent) that
// will materialize the given transforms for every ingested image.
func Create(dir string, baseW, baseH int, transforms []xform.Transform) (*Store, error) {
	if baseW <= 0 || baseH <= 0 {
		return nil, fmt.Errorf("repstore: invalid base geometry %dx%d", baseW, baseH)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repstore: creating %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("repstore: %s already contains a store", dir)
	}
	ids := make([]string, len(transforms))
	for i, t := range transforms {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		ids[i] = t.ID()
	}
	s := &Store{
		dir: dir,
		manifest: Manifest{
			Version:    1,
			BaseW:      baseW,
			BaseH:      baseH,
			Transforms: ids,
		},
		xforms: append([]xform.Transform(nil), transforms...),
		reps:   make(map[string]*os.File),
	}
	var err error
	s.source, err = os.OpenFile(filepath.Join(dir, "source.dat"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("repstore: opening source.dat: %w", err)
	}
	for _, t := range transforms {
		f, err := os.OpenFile(filepath.Join(dir, repFileName(t.ID())), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("repstore: opening rep file for %s: %w", t.ID(), err)
		}
		s.reps[t.ID()] = f
	}
	if err := s.writeManifest(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Open opens an existing store and validates record counts against file
// sizes, detecting truncation.
func Open(dir string) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("repstore: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%w: bad manifest: %v", ErrCorrupt, err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, m.Version)
	}
	s := &Store{dir: dir, manifest: m, reps: make(map[string]*os.File)}
	for _, id := range m.Transforms {
		t, err := xform.Parse(id)
		if err != nil {
			return nil, fmt.Errorf("%w: manifest transform %q: %v", ErrCorrupt, id, err)
		}
		s.xforms = append(s.xforms, t)
	}
	s.source, err = os.Open(filepath.Join(dir, "source.dat"))
	if err != nil {
		return nil, fmt.Errorf("repstore: opening source.dat: %w", err)
	}
	if err := s.checkSize(s.source, s.sourceRecordSize(), "source.dat"); err != nil {
		s.Close()
		return nil, err
	}
	for _, t := range s.xforms {
		f, err := os.Open(filepath.Join(dir, repFileName(t.ID())))
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("repstore: opening rep file for %s: %w", t.ID(), err)
		}
		if err := s.checkSize(f, t.StoredBytes(), repFileName(t.ID())); err != nil {
			f.Close()
			s.Close()
			return nil, err
		}
		s.reps[t.ID()] = f
	}
	return s, nil
}

func (s *Store) checkSize(f *os.File, record int, name string) error {
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("repstore: stat %s: %w", name, err)
	}
	want := int64(record) * int64(s.manifest.Count)
	if info.Size() != want {
		return fmt.Errorf("%w: %s is %d bytes, manifest implies %d (count=%d, record=%d)",
			ErrCorrupt, name, info.Size(), want, s.manifest.Count, record)
	}
	return nil
}

func repFileName(id string) string {
	return "rep-" + strings.ReplaceAll(id, "/", "_") + ".dat"
}

func (s *Store) sourceRecordSize() int {
	return img.EncodedSize(s.manifest.BaseW, s.manifest.BaseH, img.RGB)
}

func (s *Store) writeManifest() error {
	raw, err := json.MarshalIndent(s.manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("repstore: encoding manifest: %w", err)
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("repstore: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("repstore: replacing manifest: %w", err)
	}
	return nil
}

// Count returns the number of ingested images.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.manifest.Count
}

// Transforms returns the transforms materialized by this store.
func (s *Store) Transforms() []xform.Transform {
	return append([]xform.Transform(nil), s.xforms...)
}

// BaseSize returns the full-resolution geometry.
func (s *Store) BaseSize() (w, h int) { return s.manifest.BaseW, s.manifest.BaseH }

// Ingest appends one full-size image, materializing every configured
// representation (the ONGOING pipeline: transform on ingest, load-only at
// query time). It returns the image's index.
func (s *Store) Ingest(im *img.Image) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if im.W != s.manifest.BaseW || im.H != s.manifest.BaseH || im.Mode != img.RGB {
		return 0, fmt.Errorf("repstore: ingest image %dx%d/%v, store wants %dx%d/rgb",
			im.W, im.H, im.Mode, s.manifest.BaseW, s.manifest.BaseH)
	}
	if err := s.appendRecord(s.source, im, s.sourceRecordSize(), "source.dat"); err != nil {
		return 0, err
	}
	for _, t := range s.xforms {
		rep := t.Apply(im)
		if err := s.appendRecord(s.reps[t.ID()], rep, t.StoredBytes(), repFileName(t.ID())); err != nil {
			return 0, err
		}
	}
	idx := s.manifest.Count
	s.manifest.Count++
	if err := s.writeManifest(); err != nil {
		return 0, err
	}
	return idx, nil
}

// IngestAll appends a batch of images, deferring the manifest write to the
// end (one fsync-visible update per batch rather than per image).
func (s *Store) IngestAll(ims []*img.Image) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, im := range ims {
		if im.W != s.manifest.BaseW || im.H != s.manifest.BaseH || im.Mode != img.RGB {
			return fmt.Errorf("repstore: ingest image %dx%d/%v, store wants %dx%d/rgb",
				im.W, im.H, im.Mode, s.manifest.BaseW, s.manifest.BaseH)
		}
		if err := s.appendRecord(s.source, im, s.sourceRecordSize(), "source.dat"); err != nil {
			return err
		}
		for _, t := range s.xforms {
			rep := t.Apply(im)
			if err := s.appendRecord(s.reps[t.ID()], rep, t.StoredBytes(), repFileName(t.ID())); err != nil {
				return err
			}
		}
		s.manifest.Count++
	}
	return s.writeManifest()
}

func (s *Store) appendRecord(f *os.File, im *img.Image, record int, name string) error {
	var buf bytes.Buffer
	buf.Grow(record)
	if err := img.Encode(&buf, im); err != nil {
		return fmt.Errorf("repstore: encoding record for %s: %w", name, err)
	}
	if buf.Len() != record {
		return fmt.Errorf("repstore: record for %s is %d bytes, want %d", name, buf.Len(), record)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("repstore: appending to %s: %w", name, err)
	}
	return nil
}

// LoadSource reads full-size image i.
func (s *Store) LoadSource(i int) (*img.Image, error) {
	// faults.StoreDecode models a corrupt or unreadable source record — the
	// chaos suite's "disk ate a frame" case.
	if err := faults.Fire(faults.StoreDecode); err != nil {
		return nil, fmt.Errorf("repstore: source record %d: %w", i, err)
	}
	return s.loadRecord(s.source, i, s.sourceRecordSize(), "source.dat")
}

// LoadRep reads representation i for transform t. The transform must be one
// the store materializes.
func (s *Store) LoadRep(i int, t xform.Transform) (*img.Image, error) {
	// faults.StoreRepSlow models a wedged disk (pure delay); StoreRepRead a
	// failed representation read, which the engines degrade around.
	_ = faults.Fire(faults.StoreRepSlow)
	if err := faults.Fire(faults.StoreRepRead); err != nil {
		return nil, fmt.Errorf("repstore: rep %s record %d: %w", t.ID(), i, err)
	}
	f, ok := s.reps[t.ID()]
	if !ok {
		return nil, fmt.Errorf("repstore: transform %s not materialized in this store", t.ID())
	}
	return s.loadRecord(f, i, t.StoredBytes(), repFileName(t.ID()))
}

func (s *Store) loadRecord(f *os.File, i, record int, name string) (*img.Image, error) {
	if n := s.Count(); i < 0 || i >= n {
		return nil, fmt.Errorf("repstore: index %d out of range [0,%d)", i, n)
	}
	buf := make([]byte, record)
	if _, err := f.ReadAt(buf, int64(i)*int64(record)); err != nil {
		return nil, fmt.Errorf("repstore: reading %s record %d: %w", name, i, err)
	}
	im, err := img.Decode(bytes.NewReader(buf))
	if err != nil {
		return nil, fmt.Errorf("%w: %s record %d: %v", ErrCorrupt, name, i, err)
	}
	return im, nil
}

// ScanSource streams every full-size image in order.
func (s *Store) ScanSource(fn func(i int, im *img.Image) error) error {
	n := s.Count() // fixed bound: rows ingested mid-scan are not visited
	for i := 0; i < n; i++ {
		im, err := s.LoadSource(i)
		if err != nil {
			return err
		}
		if err := fn(i, im); err != nil {
			return err
		}
	}
	return nil
}

// ScanRep streams every representation of transform t in order.
func (s *Store) ScanRep(t xform.Transform, fn func(i int, im *img.Image) error) error {
	if _, ok := s.reps[t.ID()]; !ok {
		return fmt.Errorf("repstore: transform %s not materialized in this store", t.ID())
	}
	n := s.Count() // fixed bound: rows ingested mid-scan are not visited
	for i := 0; i < n; i++ {
		im, err := s.LoadRep(i, t)
		if err != nil {
			return err
		}
		if err := fn(i, im); err != nil {
			return err
		}
	}
	return nil
}

// Close releases file handles. Safe to call more than once.
func (s *Store) Close() error {
	var first error
	if s.source != nil {
		if err := s.source.Close(); err != nil && first == nil {
			first = err
		}
		s.source = nil
	}
	for id, f := range s.reps {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.reps, id)
	}
	return first
}
