// Quickstart: install a contains_object predicate, inspect its Pareto
// frontier, pick a cascade under an accuracy budget, and classify images.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tahoma"
)

func main() {
	log.SetFlags(0)

	// 1. A labeled corpus for the predicate contains_object(fence).
	// (Stands in for the paper's ImageNet categories; see DESIGN.md.)
	splits, err := tahoma.GenerateCorpus("fence", tahoma.CorpusOptions{
		BaseSize: 32, TrainN: 120, ConfigN: 60, EvalN: 120, Seed: 42, Augment: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. System initialization: train the design space (architectures ×
	// input representations), calibrate thresholds, evaluate cascades under
	// the CAMERA deployment scenario.
	cfg := tahoma.DefaultConfig()
	cfg.Sizes = []int{8, 16, 32} // the corpus is 32×32; keep rungs within it
	cfg.DeepXform.Size = 32
	params := tahoma.DefaultCostParams()
	params.SourceW, params.SourceH = 32, 32

	fmt.Println("initializing predicate contains_object(fence)...")
	pred, err := tahoma.InstallPredicate("fence", splits, cfg, tahoma.Camera, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d models, evaluated %d cascades\n", pred.ModelCount(), pred.CascadeCount())

	// 3. The Pareto frontier: every point is a cascade nothing else beats
	// on both accuracy and throughput.
	fmt.Println("\nPareto-optimal cascades (CAMERA):")
	for _, p := range pred.Frontier() {
		fmt.Printf("  %8.0f img/s  acc %.3f  %s\n", p.Throughput, p.Accuracy, pred.Describe(p))
	}

	// 4. Pick the fastest cascade within a 5% accuracy budget and run it.
	clf, err := pred.Choose(tahoma.Constraints{MaxAccuracyLoss: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen cascade: %s\n  expected accuracy %.3f, expected throughput %.0f img/s\n",
		clf, clf.Expected.Accuracy, clf.Expected.Throughput)

	correct, total := 0, 0
	for _, e := range splits.Eval.Examples {
		got, err := clf.Classify(e.Image)
		if err != nil {
			log.Fatal(err)
		}
		if got == e.Label {
			correct++
		}
		total++
	}
	fmt.Printf("classified %d evaluation images: %.1f%% correct\n",
		total, 100*float64(correct)/float64(total))
}
