// Scenarios: why deployment-scenario awareness matters (the paper's Figures
// 4/9 and Table III in miniature). The same trained predicate is priced
// under all four deployment scenarios; the cascade an inference-only
// optimizer would pick is compared against the scenario-aware choice.
//
//	go run ./examples/scenarios
package main

import (
	"fmt"
	"log"

	"tahoma"
)

func main() {
	log.SetFlags(0)

	splits, err := tahoma.GenerateCorpus("coho", tahoma.CorpusOptions{
		BaseSize: 32, TrainN: 120, ConfigN: 60, EvalN: 120, Seed: 9, Augment: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := tahoma.DefaultConfig()
	cfg.Sizes = []int{8, 16, 32}
	cfg.DeepXform.Size = 32
	params := tahoma.DefaultCostParams()
	params.SourceW, params.SourceH = 32, 32

	fmt.Println("initializing contains_object(coho)...")
	pred, err := tahoma.InstallPredicate("coho", splits, cfg, tahoma.InferOnly, params)
	if err != nil {
		log.Fatal(err)
	}

	// The cascade that looks best when only inference is priced.
	oblivious, err := pred.Choose(tahoma.Constraints{MaxAccuracyLoss: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninference-only pick: %s\n  (%.0f img/s at accuracy %.3f under INFER_ONLY)\n",
		oblivious, oblivious.Expected.Throughput, oblivious.Expected.Accuracy)

	fmt.Printf("\n%-12s %18s %18s %8s\n", "scenario", "oblivious (img/s)", "aware (img/s)", "gain")
	for _, sc := range []tahoma.Scenario{tahoma.Ongoing, tahoma.Camera, tahoma.Archive} {
		repriced, err := pred.Reprice(sc, params)
		if err != nil {
			log.Fatal(err)
		}
		// The oblivious system deploys the INFER_ONLY pick and pays this
		// scenario's real costs for it (indices are stable across Reprice).
		_, oblivThru, err := repriced.ResultAt(oblivious.Index)
		if err != nil {
			log.Fatal(err)
		}
		// The aware system re-selects on this scenario's own frontier.
		aware, err := repriced.Choose(tahoma.Constraints{MaxAccuracyLoss: 0.05})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v %18.0f %18.0f %+7.1f%%   aware cascade: %s\n",
			sc, oblivThru, aware.Expected.Throughput,
			(aware.Expected.Throughput/oblivThru-1)*100, aware)
	}
	fmt.Println("\nthe aware pick dominates whenever data-handling costs re-rank the cascades")
}
