package tensor

import "fmt"

// Int8 inference kernels: symmetric int8 quantization helpers and a blocked
// int8×int8→int32 GEMM. The quantized path exists to make the cheap early
// cascade levels cheaper still — weights shrink 4×, and the hot GEMM loop
// computes three multiply-accumulates per 64-bit integer multiply.
//
// Representation. Values are quantized symmetrically: q = round(x/scale)
// clamped to [-127, 127]. Both operands are STORED in offset form
// (q + 128 ∈ [1, 255], a uint8) so the kernel works on non-negative lanes,
// and the kernel removes the offset algebraically afterwards: with
// a′ = qa + 128 and b′ = qb + 128,
//
//	Σ_p qa·qb = Σ_p a′·b′ − 128·Σ_p a′ − 128·Σ_p b′ + 128²·k
//
// so precomputed row sums of A′ and column sums of B′ turn the offset GEMM
// back into the signed product exactly.
//
// Vectorization. The kernel is pure Go, so it vectorizes within a 64-bit
// word (SWAR): three adjacent output columns of B′ ride one uint64 in 21-bit
// lanes, and one multiply by a broadcast weight byte a′ computes all three
// lane products at once. A lane product is at most 255·255 < 2¹⁷, which
// leaves 21−17 bits of headroom: a lane can absorb swarChunk = 32 k-steps
// before it could carry into its neighbor, so the kernel drains the lanes
// into 64-bit per-column sums every 32 steps and keeps going. The inner loop
// runs two output rows against two words — twelve multiply-accumulates per
// pass, with every packed word loaded once and multiplied twice.
//
// Bit-determinism. Everything after quantization is integer arithmetic, which
// is exact and associative: the blocked kernel is bit-identical to the naive
// int32 triple loop by construction, with no accumulation-order pinning
// needed (GemmInt8Naive is kept as the in-package oracle the property tests
// compare against). Quantization itself rounds half away from zero per
// element, so a quantized activation depends only on (value, scale) — never
// on batch composition — which is what makes quantized scores identical
// across batch sizes, workers and engines.

const (
	// QuantMaxQ is the symmetric quantization range: q ∈ [-QuantMaxQ, QuantMaxQ].
	QuantMaxQ = 127
	// quantOffset shifts signed int8 values into the unsigned storage form.
	quantOffset = 128
	// QuantZeroByte is the offset form of a quantized 0.0 — the value byte
	// im2col pads with, mirroring the f32 path's zero padding.
	QuantZeroByte = quantOffset
	// laneBits is the SWAR lane width: three lanes per uint64 with one spare
	// bit (3·21 = 63).
	laneBits = 21
	laneMask = 1<<laneBits - 1
	// swarChunk is how many k-steps a 21-bit lane absorbs before a product
	// sum could overflow into the neighboring lane: 32 · 255² < 2²¹.
	swarChunk = laneMask / (255 * 255)
)

// QuantScale returns the symmetric int8 scale for values up to absMax in
// magnitude: round(x/scale) stays within [-127, 127]. A non-positive absMax
// (an all-zero tensor) yields scale 1 so quantization is well-defined.
func QuantScale(absMax float32) float32 {
	if absMax <= 0 {
		return 1
	}
	return absMax / QuantMaxQ
}

// AbsMax returns max_i |xs[i]| (0 for an empty slice).
func AbsMax(xs []float32) float32 {
	var m float32
	for _, v := range xs {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// quantByte quantizes one pre-scaled value: clamp(round(v), -127, 127) + 128,
// rounding half away from zero.
func quantByte(v float32) uint8 {
	var q int32
	if v >= 0 {
		q = int32(v + 0.5)
	} else {
		q = int32(v - 0.5)
	}
	if q > QuantMaxQ {
		q = QuantMaxQ
	} else if q < -QuantMaxQ {
		q = -QuantMaxQ
	}
	return uint8(q + quantOffset)
}

// QuantizeOffset quantizes src with the given scale into dst as offset bytes:
// dst[i] = clamp(round(src[i]/scale), -127, 127) + 128. len(dst) must be at
// least len(src).
func QuantizeOffset(dst []uint8, src []float32, scale float32) {
	inv := 1 / scale
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = quantByte(v * inv)
	}
}

// DequantByte recovers the float a single offset byte represents.
func DequantByte(b uint8, scale float32) float32 {
	return float32(int32(b)-quantOffset) * scale
}

// Int8Weights is a weight matrix prepared once for quantized inference: every
// row (one output channel) quantized with its own symmetric scale, stored as
// offset bytes with the per-row byte sums the zero-point correction needs.
// Prepared weights are immutable and safely shared across goroutines.
type Int8Weights struct {
	M, K   int
	Off    []uint8   // offset bytes, M×K row-major
	RowSum []int32   // per-row sum of offset bytes
	Scale  []float32 // per-row (per-output-channel) quantization scale
}

// NewInt8Weights quantizes a [M, K] float32 matrix row by row (per output
// channel), choosing each row's scale from its own absmax.
func NewInt8Weights(w *Tensor) *Int8Weights {
	if len(w.Shape) != 2 {
		panic(fmt.Sprintf("tensor: NewInt8Weights wants a 2-d matrix, got shape %v", w.Shape))
	}
	m, k := w.Shape[0], w.Shape[1]
	q := &Int8Weights{
		M: m, K: k,
		Off:    make([]uint8, m*k),
		RowSum: make([]int32, m),
		Scale:  make([]float32, m),
	}
	for i := 0; i < m; i++ {
		row := w.Data[i*k : (i+1)*k]
		off := q.Off[i*k : (i+1)*k]
		scale := QuantScale(AbsMax(row))
		q.Scale[i] = scale
		QuantizeOffset(off, row, scale)
		var s int32
		for _, b := range off {
			s += int32(b)
		}
		q.RowSum[i] = s
	}
	return q
}

// Bytes reports the resident footprint of the prepared weights — the number
// the ~4× weight-cache shrink is measured from.
func (w *Int8Weights) Bytes() int64 {
	return int64(len(w.Off)) + 4*int64(len(w.RowSum)) + 4*int64(len(w.Scale))
}

// Int8Packed is a quantized activation matrix packed for the SWAR kernel:
// word w holds output columns 3w, 3w+1, 3w+2 in its 21-bit lanes, and the K
// values of one word are contiguous (column-triple-major) so the kernel's k
// sweep reads sequential streams. Col sums feed the zero-point correction.
// Buffers grow as needed and are reused across Pack calls; an Int8Packed is
// single-goroutine scratch.
type Int8Packed struct {
	K, N   int
	Words  int      // column-triple count: ceil(N/3)
	Data   []uint64 // Words×K, word-major: word w's k-run starts at w*K
	ColSum []int32  // per-column sum of offset bytes, length N
}

// Pack fills p from offset bytes q laid out [k, n] row-major. Trailing
// columns short of a triple leave their word's high lanes zero; the kernel
// never stores padding lanes.
func (p *Int8Packed) Pack(q []uint8, k, n int) {
	if len(q) < k*n {
		panic(fmt.Sprintf("tensor: Int8Packed.Pack got %d bytes for a %d×%d matrix", len(q), k, n))
	}
	words := (n + 2) / 3
	p.K, p.N, p.Words = k, n, words
	if cap(p.Data) < words*k {
		p.Data = make([]uint64, words*k)
	}
	p.Data = p.Data[:words*k]
	if cap(p.ColSum) < n {
		p.ColSum = make([]int32, n)
	}
	p.ColSum = p.ColSum[:n]
	for w := 0; w < words; w++ {
		j := 3 * w
		out := p.Data[w*k : (w+1)*k]
		var s0, s1, s2 int32
		switch {
		case j+3 <= n:
			for pi := 0; pi < k; pi++ {
				b0 := q[pi*n+j]
				b1 := q[pi*n+j+1]
				b2 := q[pi*n+j+2]
				out[pi] = uint64(b0) | uint64(b1)<<laneBits | uint64(b2)<<(2*laneBits)
				s0 += int32(b0)
				s1 += int32(b1)
				s2 += int32(b2)
			}
			p.ColSum[j], p.ColSum[j+1], p.ColSum[j+2] = s0, s1, s2
		case j+2 <= n:
			for pi := 0; pi < k; pi++ {
				b0 := q[pi*n+j]
				b1 := q[pi*n+j+1]
				out[pi] = uint64(b0) | uint64(b1)<<laneBits
				s0 += int32(b0)
				s1 += int32(b1)
			}
			p.ColSum[j], p.ColSum[j+1] = s0, s1
		default:
			for pi := 0; pi < k; pi++ {
				b0 := q[pi*n+j]
				out[pi] = uint64(b0)
				s0 += int32(b0)
			}
			p.ColSum[j] = s0
		}
	}
}

// PackQuant is Pack fused with quantization: it fills p directly from a
// [k, n] row-major float32 matrix, producing bit-identical state to
// QuantizeOffset into a scratch buffer followed by Pack. One row-major pass
// replaces Pack's column-triple-major sweep, so the source is read in
// sequential order exactly once and the intermediate byte matrix never
// exists — on the dense inference path that removes a full quantize
// write+read round trip over the activation matrix.
func (p *Int8Packed) PackQuant(src []float32, k, n int, scale float32) {
	if len(src) < k*n {
		panic(fmt.Sprintf("tensor: Int8Packed.PackQuant got %d values for a %d×%d matrix", len(src), k, n))
	}
	words := (n + 2) / 3
	p.K, p.N, p.Words = k, n, words
	if cap(p.Data) < words*k {
		p.Data = make([]uint64, words*k)
	}
	p.Data = p.Data[:words*k]
	if cap(p.ColSum) < n {
		p.ColSum = make([]int32, n)
	}
	p.ColSum = p.ColSum[:n]
	colSum := p.ColSum
	for j := range colSum {
		colSum[j] = 0
	}
	inv := 1 / scale
	data := p.Data
	for pi := 0; pi < k; pi++ {
		row := src[pi*n : (pi+1)*n]
		j := 0
		for ; j+3 <= n; j += 3 {
			b0 := quantByte(row[j] * inv)
			b1 := quantByte(row[j+1] * inv)
			b2 := quantByte(row[j+2] * inv)
			data[(j/3)*k+pi] = uint64(b0) | uint64(b1)<<laneBits | uint64(b2)<<(2*laneBits)
			colSum[j] += int32(b0)
			colSum[j+1] += int32(b1)
			colSum[j+2] += int32(b2)
		}
		if j < n {
			var wv uint64
			for l := 0; j+l < n; l++ {
				b := quantByte(row[j+l] * inv)
				wv |= uint64(b) << (laneBits * l)
				colSum[j+l] += int32(b)
			}
			data[(j/3)*k+pi] = wv
		}
	}
}

// PackQuantPlanes is PackQuant for a channel-major [C, B, H·W] activation
// batch: it packs sample columns straight out of the planar layout, producing
// bit-identical state to transposing into [C·H·W, B] first (the Flatten
// layer's job) and then quantizing and packing. Word w's k-run interleaves
// three sample planes read sequentially, so the f32 transpose disappears from
// the quantized dense path entirely and the column sums accumulate in
// registers across each word's whole k sweep.
func (p *Int8Packed) PackQuantPlanes(src []float32, chans, hw, n int, scale float32) {
	k := chans * hw
	if len(src) < k*n {
		panic(fmt.Sprintf("tensor: Int8Packed.PackQuantPlanes got %d values for %d×%d×%d planes", len(src), chans, n, hw))
	}
	words := (n + 2) / 3
	p.K, p.N, p.Words = k, n, words
	if cap(p.Data) < words*k {
		p.Data = make([]uint64, words*k)
	}
	p.Data = p.Data[:words*k]
	if cap(p.ColSum) < n {
		p.ColSum = make([]int32, n)
	}
	p.ColSum = p.ColSum[:n]
	inv := 1 / scale
	for w := 0; w < words; w++ {
		j := 3 * w
		out := p.Data[w*k : (w+1)*k]
		var s0, s1, s2 int32
		switch {
		case j+3 <= n:
			for ci := 0; ci < chans; ci++ {
				base := (ci*n + j) * hw
				r0 := src[base : base+hw]
				r1 := src[base+hw : base+2*hw]
				r2 := src[base+2*hw : base+3*hw]
				o := out[ci*hw : (ci+1)*hw]
				for q := 0; q < hw; q++ {
					b0 := quantByte(r0[q] * inv)
					b1 := quantByte(r1[q] * inv)
					b2 := quantByte(r2[q] * inv)
					o[q] = uint64(b0) | uint64(b1)<<laneBits | uint64(b2)<<(2*laneBits)
					s0 += int32(b0)
					s1 += int32(b1)
					s2 += int32(b2)
				}
			}
			p.ColSum[j], p.ColSum[j+1], p.ColSum[j+2] = s0, s1, s2
		case j+2 <= n:
			for ci := 0; ci < chans; ci++ {
				base := (ci*n + j) * hw
				r0 := src[base : base+hw]
				r1 := src[base+hw : base+2*hw]
				o := out[ci*hw : (ci+1)*hw]
				for q := 0; q < hw; q++ {
					b0 := quantByte(r0[q] * inv)
					b1 := quantByte(r1[q] * inv)
					o[q] = uint64(b0) | uint64(b1)<<laneBits
					s0 += int32(b0)
					s1 += int32(b1)
				}
			}
			p.ColSum[j], p.ColSum[j+1] = s0, s1
		default:
			for ci := 0; ci < chans; ci++ {
				base := (ci*n + j) * hw
				r0 := src[base : base+hw]
				o := out[ci*hw : (ci+1)*hw]
				for q := 0; q < hw; q++ {
					b0 := quantByte(r0[q] * inv)
					o[q] = uint64(b0)
					s0 += int32(b0)
				}
			}
			p.ColSum[j] = s0
		}
	}
}

// GemmInt8 computes the signed int8 product C = QA·QB into c (M×N row-major
// int32), where QA and QB are the signed values underlying the offset forms:
// c[i,j] = Σ_p (a.Off[i,p]−128)·(qb[p,j]−128), exactly. Bit-identical to
// GemmInt8Naive at every shape; k must not exceed GemmInt8MaxK.
func GemmInt8(c []int32, a *Int8Weights, b *Int8Packed) {
	m, k, n := a.M, a.K, b.N
	if k != b.K {
		panic(fmt.Sprintf("tensor: GemmInt8 inner dims %d != %d", k, b.K))
	}
	if k > GemmInt8MaxK {
		panic(fmt.Sprintf("tensor: GemmInt8 k=%d exceeds the exact-int32 bound %d", k, GemmInt8MaxK))
	}
	if len(c) < m*n {
		panic(fmt.Sprintf("tensor: GemmInt8 output holds %d values for a %d×%d result", len(c), m, n))
	}
	if n == 0 {
		return
	}
	if k > kSlabBound && k <= kAccumMax {
		gemmInt8LargeK(c, a, b)
		return
	}
	gemmInt8SmallK(c, a, b)
}

// kSlabBound splits the drivers: at or below it a pair of packed B words
// (≤ 2·kSlabBound·8 bytes) is small enough to stay cache-resident while every
// row of A sweeps it, so the small-k driver runs each word group to completion
// with direct stores. Above it the large-k driver slices k into slabs of this
// size and accumulates partial sums into c, which keeps the working set (slab
// words + slab weight rows + the c block) in L1 even for the wide dense
// layers whose packed matrix would otherwise re-stream from L2 per row pair.
const kSlabBound = 512

// kAccumMax bounds k for the slabbed driver: its running c values hold the
// zero-point pre-fill (magnitude ≤ 2·128·255·k) plus partial raw lane sums
// (≤ 255²·k), so intermediates are bounded by (255² + 128²)·k after the
// pre-fill's positive 128²k term cancels — that must fit int32. Beyond this
// (far past any model layer) the small-k driver still handles every
// k ≤ GemmInt8MaxK exactly, just without slab blocking.
const kAccumMax = (1<<31 - 1) / ((2*QuantMaxQ+1)*(2*QuantMaxQ+1) + quantOffset*quantOffset)

// GemmInt8MaxK bounds k so the signed product Σ qa·qb (≤ k·127²) fits int32.
const GemmInt8MaxK = (1<<31 - 1) / (QuantMaxQ * QuantMaxQ)

// lane extracts SWAR lane l (0..2) of a drained accumulator.
func lane(acc uint64, l int) int64 {
	return int64((acc >> (laneBits * l)) & laneMask)
}

// swarDot2x2 runs one SWAR accumulation chunk: two packed words against two
// weight rows, all four dot products at once. It is kept out of line so the
// four accumulators live in registers — inlined into the caller's big frame
// the allocator spills them to the stack inside the hot loop.
//
//go:noinline
func swarDot2x2(e0, e1 []uint64, a0, a1 []uint8) (x0, x1, y0, y1 uint64) {
	e1 = e1[:len(e0)]
	a0 = a0[:len(e0)]
	a1 = a1[:len(e0)]
	// Two k-steps per iteration: eight multiplies between loop-control ops
	// keeps the multiplier port saturated.
	p := 0
	for ; p+2 <= len(e0); p += 2 {
		u := uint64(a0[p])
		v := uint64(a1[p])
		bv0 := e0[p]
		bv1 := e1[p]
		x0 += u * bv0
		x1 += u * bv1
		y0 += v * bv0
		y1 += v * bv1
		u = uint64(a0[p+1])
		v = uint64(a1[p+1])
		bv0 = e0[p+1]
		bv1 = e1[p+1]
		x0 += u * bv0
		x1 += u * bv1
		y0 += v * bv0
		y1 += v * bv1
	}
	if p < len(e0) {
		u := uint64(a0[p])
		v := uint64(a1[p])
		x0 += u * e0[p]
		x1 += u * e1[p]
		y0 += v * e0[p]
		y1 += v * e1[p]
	}
	return
}

// swarDot2x1 is the single-word tail chunk: one packed word, two weight rows.
//
//go:noinline
func swarDot2x1(e []uint64, a0, a1 []uint8) (x, y uint64) {
	a0 = a0[:len(e)]
	a1 = a1[:len(e)]
	for p, bv := range e {
		x += uint64(a0[p]) * bv
		y += uint64(a1[p]) * bv
	}
	return
}

// swarDot1x2 is the odd-row chunk against a word group: two packed words,
// one weight row.
//
//go:noinline
func swarDot1x2(e0, e1 []uint64, a []uint8) (x, y uint64) {
	e1 = e1[:len(e0)]
	a = a[:len(e0)]
	for p, bv0 := range e0 {
		u := uint64(a[p])
		x += u * bv0
		y += u * e1[p]
	}
	return
}

// swarDot1x1 is the odd-row chunk: one packed word, one weight row.
//
//go:noinline
func swarDot1x1(e []uint64, a []uint8) (x uint64) {
	a = a[:len(e)]
	for p, bv := range e {
		x += uint64(a[p]) * bv
	}
	return
}

// gemmInt8SmallK runs word groups outermost and row pairs inside, so each
// pair of packed B words (≤ 2·kSlabBound·8 bytes, cache-resident) is read
// once per GEMM instead of re-streamed per row pair — at conv shapes that
// cuts the packed-matrix traffic by m/2×. Each inner sweep is the 2×2 SWAR
// micro-kernel: six columns, twelve multiply-accumulates per iteration, three
// per 64-bit multiply, with the 21-bit lanes drained into 64-bit sums every
// swarChunk steps. Integer accumulation is exact, so the loop order is chosen
// purely for locality — the output bits match the oracle either way.
func gemmInt8SmallK(c []int32, a *Int8Weights, b *Int8Packed) {
	m, k, n, words := a.M, a.K, b.N, b.Words
	data, colSum := b.Data, b.ColSum
	kTerm := quantOffset * quantOffset * int64(k)
	w := 0
	for ; 3*(w+2) <= n; w += 2 {
		base := w * k
		b0 := data[base : base+k]
		b1 := data[base+k : base+2*k]
		j := 3 * w
		cs := colSum[j : j+6 : j+6]
		var cc [6]int64
		for l := range cc {
			cc[l] = quantOffset * int64(cs[l])
		}
		i := 0
		for ; i+2 <= m; i += 2 {
			ar0 := a.Off[i*k : (i+1)*k]
			ar1 := a.Off[(i+1)*k : (i+2)*k]
			corr0 := int64(a.RowSum[i])*quantOffset - kTerm
			corr1 := int64(a.RowSum[i+1])*quantOffset - kTerm
			var sx0, sx1, sx2, sx3, sx4, sx5 int64
			var sy0, sy1, sy2, sy3, sy4, sy5 int64
			for p0 := 0; p0 < k; p0 += swarChunk {
				pe := min(p0+swarChunk, k)
				x0, x1, y0, y1 := swarDot2x2(b0[p0:pe], b1[p0:pe], ar0[p0:pe], ar1[p0:pe])
				sx0 += int64(x0 & laneMask)
				sx1 += int64(x0 >> laneBits & laneMask)
				sx2 += int64(x0 >> (2 * laneBits))
				sx3 += int64(x1 & laneMask)
				sx4 += int64(x1 >> laneBits & laneMask)
				sx5 += int64(x1 >> (2 * laneBits))
				sy0 += int64(y0 & laneMask)
				sy1 += int64(y0 >> laneBits & laneMask)
				sy2 += int64(y0 >> (2 * laneBits))
				sy3 += int64(y1 & laneMask)
				sy4 += int64(y1 >> laneBits & laneMask)
				sy5 += int64(y1 >> (2 * laneBits))
			}
			o0 := c[i*n+j : i*n+j+6 : i*n+j+6]
			o1 := c[(i+1)*n+j : (i+1)*n+j+6 : (i+1)*n+j+6]
			o0[0] = int32(sx0 - corr0 - cc[0])
			o0[1] = int32(sx1 - corr0 - cc[1])
			o0[2] = int32(sx2 - corr0 - cc[2])
			o0[3] = int32(sx3 - corr0 - cc[3])
			o0[4] = int32(sx4 - corr0 - cc[4])
			o0[5] = int32(sx5 - corr0 - cc[5])
			o1[0] = int32(sy0 - corr1 - cc[0])
			o1[1] = int32(sy1 - corr1 - cc[1])
			o1[2] = int32(sy2 - corr1 - cc[2])
			o1[3] = int32(sy3 - corr1 - cc[3])
			o1[4] = int32(sy4 - corr1 - cc[4])
			o1[5] = int32(sy5 - corr1 - cc[5])
		}
		if i < m {
			arow := a.Off[i*k : (i+1)*k]
			corr := int64(a.RowSum[i])*quantOffset - kTerm
			var s [6]int64
			for p0 := 0; p0 < k; p0 += swarChunk {
				pe := min(p0+swarChunk, k)
				x, y := swarDot1x2(b0[p0:pe], b1[p0:pe], arow[p0:pe])
				for l := 0; l < 3; l++ {
					s[l] += lane(x, l)
					s[3+l] += lane(y, l)
				}
			}
			o := c[i*n+j : i*n+j+6 : i*n+j+6]
			for l := 0; l < 6; l++ {
				o[l] = int32(s[l] - corr - cc[l])
			}
		}
	}
	// Trailing pair whose second word is padded: same 2×2 sweep as the fast
	// groups (full multiply throughput), with guarded stores for the short
	// columns. Only the store loop differs, and it runs once per row pair.
	if w+2 <= words {
		base := w * k
		b0 := data[base : base+k]
		b1 := data[base+k : base+2*k]
		j := 3 * w
		i := 0
		for ; i+2 <= m; i += 2 {
			ar0 := a.Off[i*k : (i+1)*k]
			ar1 := a.Off[(i+1)*k : (i+2)*k]
			corr0 := int64(a.RowSum[i])*quantOffset - kTerm
			corr1 := int64(a.RowSum[i+1])*quantOffset - kTerm
			var sx, sy [6]int64
			for p0 := 0; p0 < k; p0 += swarChunk {
				pe := min(p0+swarChunk, k)
				x0, x1, y0, y1 := swarDot2x2(b0[p0:pe], b1[p0:pe], ar0[p0:pe], ar1[p0:pe])
				for l := 0; l < 3; l++ {
					sx[l] += lane(x0, l)
					sx[3+l] += lane(x1, l)
					sy[l] += lane(y0, l)
					sy[3+l] += lane(y1, l)
				}
			}
			for l := 0; l < 6 && j+l < n; l++ {
				cc := quantOffset * int64(colSum[j+l])
				c[i*n+j+l] = int32(sx[l] - corr0 - cc)
				c[(i+1)*n+j+l] = int32(sy[l] - corr1 - cc)
			}
		}
		if i < m {
			arow := a.Off[i*k : (i+1)*k]
			corr := int64(a.RowSum[i])*quantOffset - kTerm
			var s [6]int64
			for p0 := 0; p0 < k; p0 += swarChunk {
				pe := min(p0+swarChunk, k)
				x, y := swarDot1x2(b0[p0:pe], b1[p0:pe], arow[p0:pe])
				for l := 0; l < 3; l++ {
					s[l] += lane(x, l)
					s[3+l] += lane(y, l)
				}
			}
			for l := 0; l < 6 && j+l < n; l++ {
				c[i*n+j+l] = int32(s[l] - corr - quantOffset*int64(colSum[j+l]))
			}
		}
		w += 2
	}
	// Lone trailing word (odd word count), possibly padded.
	if w < words {
		bw := data[w*k : (w+1)*k]
		j := 3 * w
		i := 0
		for ; i+2 <= m; i += 2 {
			ar0 := a.Off[i*k : (i+1)*k]
			ar1 := a.Off[(i+1)*k : (i+2)*k]
			corr0 := int64(a.RowSum[i])*quantOffset - kTerm
			corr1 := int64(a.RowSum[i+1])*quantOffset - kTerm
			var s [6]int64
			for p0 := 0; p0 < k; p0 += swarChunk {
				pe := min(p0+swarChunk, k)
				x, y := swarDot2x1(bw[p0:pe], ar0[p0:pe], ar1[p0:pe])
				for l := 0; l < 3; l++ {
					s[l] += lane(x, l)
					s[3+l] += lane(y, l)
				}
			}
			for l := 0; l < 3 && j+l < n; l++ {
				cc := quantOffset * int64(colSum[j+l])
				c[i*n+j+l] = int32(s[l] - corr0 - cc)
				c[(i+1)*n+j+l] = int32(s[3+l] - corr1 - cc)
			}
		}
		if i < m {
			arow := a.Off[i*k : (i+1)*k]
			corr := int64(a.RowSum[i])*quantOffset - kTerm
			var s [3]int64
			for p0 := 0; p0 < k; p0 += swarChunk {
				pe := min(p0+swarChunk, k)
				x := swarDot1x1(bw[p0:pe], arow[p0:pe])
				for l := 0; l < 3; l++ {
					s[l] += lane(x, l)
				}
			}
			for l := 0; l < 3 && j+l < n; l++ {
				c[i*n+j+l] = int32(s[l] - corr - quantOffset*int64(colSum[j+l]))
			}
		}
	}
}

// gemmInt8LargeK is the slab-blocked driver for deep inner dimensions (wide
// dense layers): c is pre-filled with the zero-point correction terms, then k
// is swept in kSlabBound-sized slabs with word groups outer and row pairs
// inner, accumulating each slab's raw lane sums into c. Per slab the working
// set — two packed slab words (8 KB), two weight-row slabs (1 KB) and the c
// block — fits L1, so neither the packed matrix nor the weights re-stream
// from L2 per row pair. Intermediate c values stay within int32 for any
// k ≤ kAccumMax; exact integer addition makes the slab split invisible in
// the output bits.
func gemmInt8LargeK(c []int32, a *Int8Weights, b *Int8Packed) {
	m, k, n, words := a.M, a.K, b.N, b.Words
	data, colSum := b.Data, b.ColSum
	kTerm := quantOffset * quantOffset * int64(k)
	for i := 0; i < m; i++ {
		base := kTerm - int64(a.RowSum[i])*quantOffset
		ci := c[i*n : i*n+n]
		for j, s := range colSum {
			ci[j] = int32(base - quantOffset*int64(s))
		}
	}
	w := 0
	for ; 3*(w+2) <= n; w += 2 {
		base := w * k
		wb0 := data[base : base+k]
		wb1 := data[base+k : base+2*k]
		j := 3 * w
		for t0 := 0; t0 < k; t0 += kSlabBound {
			t1 := min(t0+kSlabBound, k)
			sb0, sb1 := wb0[t0:t1], wb1[t0:t1]
			i := 0
			for ; i+2 <= m; i += 2 {
				ar0 := a.Off[i*k+t0 : i*k+t1]
				ar1 := a.Off[(i+1)*k+t0 : (i+1)*k+t1]
				var sx0, sx1, sx2, sx3, sx4, sx5 int64
				var sy0, sy1, sy2, sy3, sy4, sy5 int64
				for p0 := 0; p0 < len(sb0); p0 += swarChunk {
					pe := min(p0+swarChunk, len(sb0))
					x0, x1, y0, y1 := swarDot2x2(sb0[p0:pe], sb1[p0:pe], ar0[p0:pe], ar1[p0:pe])
					sx0 += int64(x0 & laneMask)
					sx1 += int64(x0 >> laneBits & laneMask)
					sx2 += int64(x0 >> (2 * laneBits))
					sx3 += int64(x1 & laneMask)
					sx4 += int64(x1 >> laneBits & laneMask)
					sx5 += int64(x1 >> (2 * laneBits))
					sy0 += int64(y0 & laneMask)
					sy1 += int64(y0 >> laneBits & laneMask)
					sy2 += int64(y0 >> (2 * laneBits))
					sy3 += int64(y1 & laneMask)
					sy4 += int64(y1 >> laneBits & laneMask)
					sy5 += int64(y1 >> (2 * laneBits))
				}
				o0 := c[i*n+j : i*n+j+6 : i*n+j+6]
				o1 := c[(i+1)*n+j : (i+1)*n+j+6 : (i+1)*n+j+6]
				o0[0] += int32(sx0)
				o0[1] += int32(sx1)
				o0[2] += int32(sx2)
				o0[3] += int32(sx3)
				o0[4] += int32(sx4)
				o0[5] += int32(sx5)
				o1[0] += int32(sy0)
				o1[1] += int32(sy1)
				o1[2] += int32(sy2)
				o1[3] += int32(sy3)
				o1[4] += int32(sy4)
				o1[5] += int32(sy5)
			}
			if i < m {
				arow := a.Off[i*k+t0 : i*k+t1]
				var s [6]int64
				for p0 := 0; p0 < len(sb0); p0 += swarChunk {
					pe := min(p0+swarChunk, len(sb0))
					x, y := swarDot1x2(sb0[p0:pe], sb1[p0:pe], arow[p0:pe])
					for l := 0; l < 3; l++ {
						s[l] += lane(x, l)
						s[3+l] += lane(y, l)
					}
				}
				o := c[i*n+j : i*n+j+6 : i*n+j+6]
				for l := 0; l < 6; l++ {
					o[l] += int32(s[l])
				}
			}
		}
	}
	// Trailing pair whose second word is padded: full 2×2 multiply
	// throughput, guarded accumulate stores.
	if w+2 <= words {
		base := w * k
		wb0 := data[base : base+k]
		wb1 := data[base+k : base+2*k]
		j := 3 * w
		for t0 := 0; t0 < k; t0 += kSlabBound {
			t1 := min(t0+kSlabBound, k)
			sb0, sb1 := wb0[t0:t1], wb1[t0:t1]
			i := 0
			for ; i+2 <= m; i += 2 {
				ar0 := a.Off[i*k+t0 : i*k+t1]
				ar1 := a.Off[(i+1)*k+t0 : (i+1)*k+t1]
				var sx, sy [6]int64
				for p0 := 0; p0 < len(sb0); p0 += swarChunk {
					pe := min(p0+swarChunk, len(sb0))
					x0, x1, y0, y1 := swarDot2x2(sb0[p0:pe], sb1[p0:pe], ar0[p0:pe], ar1[p0:pe])
					for l := 0; l < 3; l++ {
						sx[l] += lane(x0, l)
						sx[3+l] += lane(x1, l)
						sy[l] += lane(y0, l)
						sy[3+l] += lane(y1, l)
					}
				}
				for l := 0; l < 6 && j+l < n; l++ {
					c[i*n+j+l] += int32(sx[l])
					c[(i+1)*n+j+l] += int32(sy[l])
				}
			}
			if i < m {
				arow := a.Off[i*k+t0 : i*k+t1]
				var s [6]int64
				for p0 := 0; p0 < len(sb0); p0 += swarChunk {
					pe := min(p0+swarChunk, len(sb0))
					x, y := swarDot1x2(sb0[p0:pe], sb1[p0:pe], arow[p0:pe])
					for l := 0; l < 3; l++ {
						s[l] += lane(x, l)
						s[3+l] += lane(y, l)
					}
				}
				for l := 0; l < 6 && j+l < n; l++ {
					c[i*n+j+l] += int32(s[l])
				}
			}
		}
		w += 2
	}
	// Lone trailing word (odd word count), possibly padded.
	if w < words {
		bw := data[w*k : (w+1)*k]
		j := 3 * w
		for t0 := 0; t0 < k; t0 += kSlabBound {
			t1 := min(t0+kSlabBound, k)
			sb := bw[t0:t1]
			i := 0
			for ; i+2 <= m; i += 2 {
				ar0 := a.Off[i*k+t0 : i*k+t1]
				ar1 := a.Off[(i+1)*k+t0 : (i+1)*k+t1]
				var s [6]int64
				for p0 := 0; p0 < len(sb); p0 += swarChunk {
					pe := min(p0+swarChunk, len(sb))
					x, y := swarDot2x1(sb[p0:pe], ar0[p0:pe], ar1[p0:pe])
					for l := 0; l < 3; l++ {
						s[l] += lane(x, l)
						s[3+l] += lane(y, l)
					}
				}
				for l := 0; l < 3 && j+l < n; l++ {
					c[i*n+j+l] += int32(s[l])
					c[(i+1)*n+j+l] += int32(s[3+l])
				}
			}
			if i < m {
				arow := a.Off[i*k+t0 : i*k+t1]
				var s [3]int64
				for p0 := 0; p0 < len(sb); p0 += swarChunk {
					pe := min(p0+swarChunk, len(sb))
					x := swarDot1x1(sb[p0:pe], arow[p0:pe])
					for l := 0; l < 3; l++ {
						s[l] += lane(x, l)
					}
				}
				for l := 0; l < 3 && j+l < n; l++ {
					c[i*n+j+l] += int32(s[l])
				}
			}
		}
	}
}

// GemmInt8Naive is the in-package oracle: the plain int32 triple loop over
// the offset bytes of A (m×k) and B (k×n), both row-major. Every blocked
// variant must produce bit-identical output.
func GemmInt8Naive(c []int32, aOff, bOff []uint8, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for p := 0; p < k; p++ {
				qa := int32(aOff[i*k+p]) - quantOffset
				qb := int32(bOff[p*n+j]) - quantOffset
				s += qa * qb
			}
			c[i*n+j] = s
		}
	}
}

// im2colRowBytes fills one byte im2col output row for kernel offset (kh, kw)
// from one input channel plane, exactly as im2colRow does for float32 —
// except padding reads become QuantZeroByte, the offset form of a quantized
// 0.0, mirroring the f32 path's zero padding.
func im2colRowBytes(out, plane []uint8, g ConvGeom, kh, kw, oh, ow int) {
	oxLo, oxHi := inSpan(ow, g.StrideW, g.PadW, kw, g.InW)
	idx := 0
	for oy := 0; oy < oh; oy++ {
		iy := oy*g.StrideH - g.PadH + kh
		if iy < 0 || iy >= g.InH {
			fillBytes(out[idx:idx+ow], QuantZeroByte)
			idx += ow
			continue
		}
		rowBase := iy * g.InW
		fillBytes(out[idx:idx+oxLo], QuantZeroByte)
		if oxHi == oxLo {
			fillBytes(out[idx+oxLo:idx+ow], QuantZeroByte)
			idx += ow
			continue
		}
		if g.StrideW == 1 {
			srcLo := rowBase + oxLo - g.PadW + kw
			copy(out[idx+oxLo:idx+oxHi], plane[srcLo:srcLo+oxHi-oxLo])
		} else {
			for ox := oxLo; ox < oxHi; ox++ {
				out[idx+ox] = plane[rowBase+ox*g.StrideW-g.PadW+kw]
			}
		}
		fillBytes(out[idx+oxHi:idx+ow], QuantZeroByte)
		idx += ow
	}
}

func fillBytes(s []uint8, v uint8) {
	for i := range s {
		s[i] = v
	}
}

// Im2ColBatchBytes is Im2ColBatch over offset bytes: x is a quantized
// [C, B, H, W] batch flattened row-major, col receives the [C·KH·KW, B·OH·OW]
// byte column matrix. Together with quantizing the layer input once, this is
// what lets the quantized conv path skip the f32 im2col entirely — the
// column matrix it builds moves a quarter of the bytes.
func Im2ColBatchBytes(col, x []uint8, bsz int, g ConvGeom) {
	oh, ow := g.OutH(), g.OutW()
	ohow := oh * ow
	cols := bsz * ohow
	planeLen := g.InH * g.InW
	if len(x) < g.InC*bsz*planeLen {
		panic(fmt.Sprintf("tensor: Im2ColBatchBytes input has %d bytes, want %d", len(x), g.InC*bsz*planeLen))
	}
	if len(col) < g.ColRows()*cols {
		panic(fmt.Sprintf("tensor: Im2ColBatchBytes col has %d bytes, want %d", len(col), g.ColRows()*cols))
	}
	row := 0
	for c := 0; c < g.InC; c++ {
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				base := row * cols
				for s := 0; s < bsz; s++ {
					plane := x[(c*bsz+s)*planeLen : (c*bsz+s+1)*planeLen]
					im2colRowBytes(col[base+s*ohow:base+(s+1)*ohow], plane, g, kh, kw, oh, ow)
				}
				row++
			}
		}
	}
}
