package matstore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tahoma/internal/faults"
)

// persistFixture builds a store with a few populated columns and returns its
// serialized image under tag.
func persistFixture(t *testing.T, tag uint64) (*Store, []byte) {
	t.Helper()
	s := New(0)
	for _, k := range []Key{{"cloak", "c1"}, {"fence", "c9"}} {
		col := s.Column(k)
		col.Grow(200)
		for i := 0; i < 200; i += 3 {
			col.SetLabel(i, i%2 == 0)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf, tag); err != nil {
		t.Fatal(err)
	}
	return s, buf.Bytes()
}

func TestPersistBitFlipRefusedStoreUntouched(t *testing.T) {
	_, image := persistFixture(t, 7)

	dst := New(0)
	dst.Column(Key{"resident", "r"}).Grow(10)
	before := dst.Stats().CoveredRows

	// Flip one bit in every byte position in turn is overkill; flip a byte in
	// the middle of a column frame (past magic + header frame).
	for _, off := range []int{len(persistMagic) + 30, len(image) / 2, len(image) - 5} {
		corrupt := append([]byte(nil), image...)
		corrupt[off] ^= 0x40
		err := dst.Load(bytes.NewReader(corrupt), 7)
		if err == nil {
			t.Fatalf("bit flip at %d accepted", off)
		}
		if dst.Stats().CoveredRows != before {
			t.Fatalf("failed load at offset %d mutated the resident store", off)
		}
		if _, ok := dst.Lookup(Key{"resident", "r"}); !ok {
			t.Fatalf("failed load at offset %d dropped resident columns", off)
		}
	}
}

func TestPersistTruncationRefusedStoreUntouched(t *testing.T) {
	_, image := persistFixture(t, 7)
	dst := New(0)
	dst.Column(Key{"resident", "r"}).Grow(10)
	// Cut mid-column (anywhere strictly inside the file).
	for _, cut := range []int{len(image) - 1, len(image) - 20, len(image) / 2, len(persistMagic) + 3} {
		err := dst.Load(bytes.NewReader(image[:cut]), 7)
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if _, ok := dst.Lookup(Key{"resident", "r"}); !ok {
			t.Fatalf("failed load at cut %d dropped resident columns", cut)
		}
	}
}

func TestPersistWrongCorpusTagRefused(t *testing.T) {
	_, image := persistFixture(t, 7)
	dst := New(0)
	err := dst.Load(bytes.NewReader(image), 8)
	if err == nil || !strings.Contains(err.Error(), "different corpus") {
		t.Fatalf("wrong-corpus load: %v", err)
	}
}

func TestPersistLegacyMagicRefused(t *testing.T) {
	dst := New(0)
	err := dst.Load(bytes.NewReader([]byte("TAHMAT1\nwhatever")), 0)
	if err == nil || !strings.Contains(err.Error(), "TAHMAT1") {
		t.Fatalf("legacy load: %v", err)
	}
}

func TestPersistTrailingGarbageRefused(t *testing.T) {
	_, image := persistFixture(t, 7)
	dst := New(0)
	if err := dst.Load(bytes.NewReader(append(append([]byte(nil), image...), 0xFF)), 7); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestFaultTornWriteRefusesToLoad(t *testing.T) {
	faults.Reset()
	defer faults.Reset()
	s, _ := persistFixture(t, 7)
	path := filepath.Join(t.TempDir(), "labels.bin")
	if err := faults.Enable(faults.MatTornWrite, faults.Spec{Times: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveFile(path, 7); err != nil {
		t.Fatalf("SaveFile under torn-write fault: %v", err)
	}
	full, whole := persistFixture(t, 7)
	_ = full
	torn, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) >= len(whole) {
		t.Fatalf("torn-write fault did not truncate (got %d, whole %d)", len(torn), len(whole))
	}
	dst := New(0)
	if err := dst.LoadFile(path, 7); err == nil {
		t.Fatal("torn file accepted")
	}
}
