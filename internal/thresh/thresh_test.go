package thresh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tahoma/internal/metrics"
)

func TestDecide(t *testing.T) {
	th := Thresholds{Low: 0.2, High: 0.8}
	cases := []struct {
		score    float32
		decided  bool
		positive bool
	}{
		{0.9, true, true},
		{0.8, true, true},
		{0.5, false, false},
		{0.2, true, false},
		{0.1, true, false},
	}
	for _, c := range cases {
		d, p := th.Decide(c.score)
		if d != c.decided || p != c.positive {
			t.Errorf("Decide(%v) = (%v,%v), want (%v,%v)", c.score, d, p, c.decided, c.positive)
		}
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(nil, nil, 0.9, 100); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := Calibrate([]float32{0.5}, []bool{true, false}, 0.9, 100); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := Calibrate([]float32{0.5}, []bool{true}, 1.5, 100); err == nil {
		t.Fatal("bad target must error")
	}
}

func TestCalibratePerfectSeparation(t *testing.T) {
	// Scores perfectly separate: positives >= 0.8, negatives <= 0.3.
	scores := []float32{0.9, 0.85, 0.8, 0.3, 0.2, 0.1}
	labels := []bool{true, true, true, false, false, false}
	th, err := Calibrate(scores, labels, 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Every example should be decided confidently and correctly.
	if got := th.Coverage(scores); got != 1 {
		t.Fatalf("coverage = %v, want 1 (thresholds %+v)", got, th)
	}
	for i, s := range scores {
		d, p := th.Decide(s)
		if !d || p != labels[i] {
			t.Fatalf("score %v decided=(%v,%v), want (true,%v)", s, d, p, labels[i])
		}
	}
}

func TestCalibrateUnattainableTarget(t *testing.T) {
	// Labels are anti-correlated with scores: no threshold can reach 0.99
	// precision on either side.
	scores := []float32{0.9, 0.8, 0.7, 0.3, 0.2, 0.1}
	labels := []bool{false, false, false, true, true, true}
	th, err := Calibrate(scores, labels, 0.99, 100)
	if err != nil {
		t.Fatal(err)
	}
	if th.Coverage(scores) != 0 {
		t.Fatalf("unattainable target should decide nothing, got coverage %v (th=%+v)",
			th.Coverage(scores), th)
	}
}

// precisionOn computes the positive precision and NPV of th's confident
// decisions on (scores, labels).
func precisionOn(th Thresholds, scores []float32, labels []bool) (pos, neg metrics.Confusion) {
	for i, s := range scores {
		d, p := th.Decide(s)
		if !d {
			continue
		}
		if p {
			pos.Add(true, labels[i])
		} else {
			neg.Add(false, labels[i])
		}
	}
	return pos, neg
}

// TestCalibrateMeetsTargetOnConfigSet: the defining guarantee — confident
// decisions on the calibration data meet the precision target on both sides.
func TestCalibrateMeetsTargetOnConfigSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		scores := make([]float32, n)
		labels := make([]bool, n)
		for i := range scores {
			labels[i] = rng.Intn(2) == 0
			// Noisy but informative scores.
			base := 0.3
			if labels[i] {
				base = 0.7
			}
			scores[i] = float32(base) + 0.4*(rng.Float32()-0.5)
		}
		target := 0.85 + 0.14*rng.Float64()
		th, err := Calibrate(scores, labels, target, 100)
		if err != nil {
			return false
		}
		pos, neg := precisionOn(th, scores, labels)
		if pos.TP+pos.FP > 0 && pos.Precision() < target-1e-9 {
			return false
		}
		if neg.TN+neg.FN > 0 && neg.NPV() < target-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCalibrateMaximizesCoverage compares against brute force over the same
// candidate grid: no valid (low, high) pair on the grid should cover more.
func TestCalibrateMaximizesCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const steps = 20
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(60)
		scores := make([]float32, n)
		labels := make([]bool, n)
		for i := range scores {
			labels[i] = rng.Intn(2) == 0
			base := 0.25
			if labels[i] {
				base = 0.75
			}
			scores[i] = float32(base) + 0.5*(rng.Float32()-0.5)
		}
		target := 0.9
		th, err := Calibrate(scores, labels, target, steps)
		if err != nil {
			t.Fatal(err)
		}
		got := th.Coverage(scores)

		// Brute force: independently best high and best low on the grid.
		best := 0.0
		for hs := 0; hs <= steps; hs++ {
			for ls := 0; ls <= steps; ls++ {
				cand := Thresholds{Low: float32(ls) / steps, High: float32(hs) / steps}
				if cand.Low >= cand.High {
					continue
				}
				pos, neg := precisionOn(cand, scores, labels)
				if pos.TP+pos.FP > 0 && pos.Precision() < target {
					continue
				}
				if neg.TN+neg.FN > 0 && neg.NPV() < target {
					continue
				}
				if c := cand.Coverage(scores); c > best {
					best = c
				}
			}
		}
		if got < best-1e-9 {
			t.Fatalf("trial %d: calibrated coverage %.3f < brute force %.3f (th=%+v)",
				trial, got, best, th)
		}
	}
}

func TestCalibrateAll(t *testing.T) {
	scores := []float32{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	targets := []float64{0.9, 0.95, 0.99}
	ths, err := CalibrateAll(scores, labels, targets, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(ths) != 3 {
		t.Fatalf("got %d threshold sets", len(ths))
	}
	for i, th := range ths {
		if th.Target != targets[i] {
			t.Fatalf("target %v recorded as %v", targets[i], th.Target)
		}
	}
}

func TestCoverageEmpty(t *testing.T) {
	if (Thresholds{Low: 0.2, High: 0.8}).Coverage(nil) != 0 {
		t.Fatal("empty coverage should be 0")
	}
}
