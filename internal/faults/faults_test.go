package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFireDisarmedIsNil(t *testing.T) {
	Reset()
	if err := Fire(StoreDecode); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	if Firing(MatTornWrite) {
		t.Fatal("disarmed Firing returned true")
	}
}

func TestEnableFireDisable(t *testing.T) {
	Reset()
	defer Reset()
	want := errors.New("boom")
	if err := Enable(StoreDecode, Spec{Err: want}); err != nil {
		t.Fatal(err)
	}
	if err := Fire(StoreDecode); !errors.Is(err, want) {
		t.Fatalf("Fire = %v, want %v", err, want)
	}
	// Other points stay dormant.
	if err := Fire(StoreRepRead); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	Disable(StoreDecode)
	if err := Fire(StoreDecode); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
}

func TestUnknownPointRejected(t *testing.T) {
	Reset()
	if err := Enable("no.such.point", Spec{}); err == nil {
		t.Fatal("unknown point accepted")
	}
}

func TestTimesBudgetDisarms(t *testing.T) {
	Reset()
	defer Reset()
	if err := Enable(StoreRepRead, Spec{Times: 2}); err != nil {
		t.Fatal(err)
	}
	if Fire(StoreRepRead) == nil || Fire(StoreRepRead) == nil {
		t.Fatal("armed point did not fire")
	}
	if err := Fire(StoreRepRead); err != nil {
		t.Fatalf("point survived its Times budget: %v", err)
	}
	if got := Active(); len(got) != 0 {
		t.Fatalf("Active = %v after budget exhausted", got)
	}
}

func TestPanicSpec(t *testing.T) {
	Reset()
	defer Reset()
	if err := Enable(ExecWorkerPanic, Spec{Panic: true}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic spec did not panic")
		}
	}()
	_ = Fire(ExecWorkerPanic)
}

func TestPureDelayReturnsNil(t *testing.T) {
	Reset()
	defer Reset()
	if err := Enable(StoreRepSlow, Spec{Delay: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := Fire(StoreRepSlow); err != nil {
		t.Fatalf("pure-delay point returned %v", err)
	}
	if time.Since(t0) < 5*time.Millisecond {
		t.Fatal("delay not applied")
	}
}

func TestFSPointsRegistered(t *testing.T) {
	Reset()
	defer Reset()
	for _, p := range []string{FSWriteError, FSShortWrite, FSSyncError, FSCrashBeforeSync, FSCrashAfterSync} {
		if err := Enable(p, Spec{}); err != nil {
			t.Fatalf("fs point %s not registered: %v", p, err)
		}
		if err := Fire(p); err == nil {
			t.Fatalf("armed fs point %s did not fire", p)
		}
		Disable(p)
	}
}

func TestParse(t *testing.T) {
	Reset()
	defer Reset()
	if err := Parse("store.rep-read=error, store.rep-slow=slow:10ms ,exec.worker-panic=panic"); err != nil {
		t.Fatal(err)
	}
	got := Active()
	if len(got) != 3 {
		t.Fatalf("Active = %v, want 3 points", got)
	}
	if err := Parse("store.decode=explode"); err == nil || !strings.Contains(err.Error(), "bad mode") {
		t.Fatalf("bad mode accepted: %v", err)
	}
	if err := Parse("nope=error"); err == nil {
		t.Fatal("unknown point accepted by Parse")
	}
}
