package repstore

import (
	"fmt"
	"sync"

	"tahoma/internal/img"
	"tahoma/internal/xform"
)

// Cache is a bounded LRU over decoded records of a Store, keyed by
// (representation, index). Query execution in the ONGOING and ARCHIVE
// scenarios re-reads the same representations across predicates and repeat
// queries; the cache turns those re-reads into memory hits while bounding
// resident pixel bytes. Safe for concurrent use.
type Cache struct {
	store *Store

	mu  sync.Mutex
	lru *lruCore
}

// CacheStats is a point-in-time snapshot of a cache's counters. Hits,
// Misses and EvictedBytes are cumulative since construction; ResidentBytes
// is the current footprint. Execution reports subtract two snapshots to
// attribute cache work to a single run — exact when the run has the cache
// to itself, approximate when concurrent queries share it (the counters are
// cache-global).
type CacheStats struct {
	Hits          int64
	Misses        int64
	EvictedBytes  int64
	ResidentBytes int64
}

// NewCache wraps store with a cache holding up to capacityBytes of decoded
// pixel data (float32 samples; a 64×64 RGB image is 48 KiB).
func NewCache(store *Store, capacityBytes int64) (*Cache, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("repstore: cache capacity must be positive, got %d", capacityBytes)
	}
	return &Cache{store: store, lru: newLRUCore(capacityBytes)}, nil
}

// Source returns full-size image i, from cache when possible.
func (c *Cache) Source(i int) (*img.Image, error) {
	return c.get(cacheKey{rep: "", idx: i}, func() (*img.Image, error) {
		return c.store.LoadSource(i)
	})
}

// Rep returns representation i of transform t, from cache when possible.
func (c *Cache) Rep(i int, t xform.Transform) (*img.Image, error) {
	return c.get(cacheKey{rep: t.ID(), idx: i}, func() (*img.Image, error) {
		return c.store.LoadRep(i, t)
	})
}

func (c *Cache) get(key cacheKey, load func() (*img.Image, error)) (*img.Image, error) {
	c.mu.Lock()
	if im := c.lru.lookup(key); im != nil {
		c.mu.Unlock()
		return im, nil
	}
	c.mu.Unlock()

	// Load outside the lock; concurrent misses on the same key may load
	// twice, which is wasteful but correct (records are immutable, and
	// insert keeps whichever copy got there first).
	im, err := load()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.insert(key, im), nil
}

// Stats reports cache effectiveness.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.stats()
}

// Bytes reports the resident footprint — the uniform accessor every label
// or representation cache exposes (SharedReps and matstore.Store match), so
// /stats can sum the caches without knowing their shapes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.bytes
}

// Evicted reports cumulative bytes pushed out by the LRU policy — the
// uniform accessor paired with Bytes.
func (c *Cache) Evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.evicted
}

// Has reports whether the underlying store materializes transform t, i.e.
// whether Rep(i, t) can serve without transforming anything.
func (c *Cache) Has(t xform.Transform) bool {
	_, ok := c.store.reps[t.ID()]
	return ok
}

// HasSource reports whether the decoded source of image i is resident,
// without promoting it or counting a hit or miss — the query planner's
// decode-cache probe.
func (c *Cache) HasSource(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.contains(cacheKey{rep: "", idx: i})
}

// Len returns the number of cached records.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.list.Len()
}
