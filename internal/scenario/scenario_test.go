package scenario

import (
	"testing"

	"tahoma/internal/arch"
	"tahoma/internal/img"
	"tahoma/internal/model"
	"tahoma/internal/xform"
)

func testModel(t *testing.T, size int, color img.ColorMode) *model.Model {
	t.Helper()
	m, err := model.New(
		arch.Spec{ConvLayers: 1, ConvWidth: 2, DenseWidth: 2, Kernel: 3},
		xform.Transform{Size: size, Color: color},
		model.Basic, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestKindNames(t *testing.T) {
	names := map[Kind]string{
		InferOnly: "INFER_ONLY",
		Archive:   "ARCHIVE",
		Ongoing:   "ONGOING",
		Camera:    "CAMERA",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %s, want %s", k, k.String(), want)
		}
	}
	if len(AllKinds) != 4 {
		t.Fatal("AllKinds must list all four scenarios")
	}
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.DiskBytesPerSec = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth must fail")
	}
	bad = DefaultParams()
	bad.SourceW = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero geometry must fail")
	}
	bad = DefaultParams()
	bad.InferSecPerMAC = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative constant must fail")
	}
	if _, err := NewAnalytic(Camera, bad); err == nil {
		t.Fatal("NewAnalytic must reject invalid params")
	}
}

func TestAnalyticScenarioStructure(t *testing.T) {
	p := DefaultParams()
	small := testModel(t, 8, img.Gray)
	big := testModel(t, 64, img.RGB)

	inferOnly, _ := NewAnalytic(InferOnly, p)
	archive, _ := NewAnalytic(Archive, p)
	ongoing, _ := NewAnalytic(Ongoing, p)
	camera, _ := NewAnalytic(Camera, p)

	// INFER_ONLY prices no data handling at all.
	if inferOnly.SourceCost() != 0 || inferOnly.RepCost(small.Xform) != 0 {
		t.Fatal("INFER_ONLY must have zero data-handling costs")
	}
	// Only ARCHIVE pays the full-size source load.
	if archive.SourceCost() <= 0 {
		t.Fatal("ARCHIVE must pay a source load")
	}
	for _, cm := range []CostModel{ongoing, camera} {
		if cm.SourceCost() != 0 {
			t.Fatalf("%s must not pay a source load", cm.Name())
		}
	}
	// Every scenario pays inference, more for the bigger model.
	for _, cm := range []CostModel{inferOnly, archive, ongoing, camera} {
		if cm.InferCost(small) <= 0 {
			t.Fatalf("%s: inference must cost", cm.Name())
		}
		if cm.InferCost(big) <= cm.InferCost(small) {
			t.Fatalf("%s: bigger model must cost more", cm.Name())
		}
	}
	// Rep costs: ONGOING loads stored bytes; ARCHIVE/CAMERA transform.
	if ongoing.RepCost(small.Xform) <= 0 || camera.RepCost(small.Xform) <= 0 {
		t.Fatal("rep costs must be positive outside INFER_ONLY")
	}
	// Bigger representations cost more in every paying scenario.
	for _, cm := range []CostModel{archive, ongoing, camera} {
		if cm.RepCost(big.Xform) <= cm.RepCost(small.Xform) {
			t.Fatalf("%s: bigger representation must cost more", cm.Name())
		}
	}
	// ARCHIVE and CAMERA share transform pricing (they differ in source).
	if archive.RepCost(small.Xform) != camera.RepCost(small.Xform) {
		t.Fatal("ARCHIVE and CAMERA transform costs should match")
	}
	if archive.Kind() != Archive || inferOnly.Kind() != InferOnly {
		t.Fatal("Kind accessor wrong")
	}
}

func TestOngoingCheaperThanArchiveForSmallReps(t *testing.T) {
	// The point of ONGOING: loading an 8x8 gray rep is far cheaper than
	// loading a 64x64 RGB source and transforming it.
	p := DefaultParams()
	archive, _ := NewAnalytic(Archive, p)
	ongoing, _ := NewAnalytic(Ongoing, p)
	tr := xform.Transform{Size: 8, Color: img.Gray}
	archiveTotal := archive.SourceCost() + archive.RepCost(tr)
	ongoingTotal := ongoing.SourceCost() + ongoing.RepCost(tr)
	if ongoingTotal >= archiveTotal {
		t.Fatalf("ONGOING (%v) should beat ARCHIVE (%v) for small reps", ongoingTotal, archiveTotal)
	}
}

func TestProfiledLookups(t *testing.T) {
	m := testModel(t, 8, img.Gray)
	pr := &Profiled{
		Scenario:  Ongoing,
		Source:    0.5,
		Loads:     map[string]float64{m.Xform.ID(): 0.001},
		Transform: map[string]float64{m.Xform.ID(): 0.002},
		Infer:     map[string]float64{m.ID(): 0.003},
	}
	if pr.SourceCost() != 0 {
		t.Fatal("ONGOING profiled source cost must be 0")
	}
	if pr.RepCost(m.Xform) != 0.001 {
		t.Fatal("ONGOING must use load costs")
	}
	if pr.InferCost(m) != 0.003 {
		t.Fatal("infer lookup wrong")
	}
	pr.Scenario = Camera
	if pr.RepCost(m.Xform) != 0.002 {
		t.Fatal("CAMERA must use transform costs")
	}
	pr.Scenario = Archive
	if pr.SourceCost() != 0.5 {
		t.Fatal("ARCHIVE must pay the measured source cost")
	}
	pr.Scenario = InferOnly
	if pr.RepCost(m.Xform) != 0 {
		t.Fatal("INFER_ONLY must not pay rep costs")
	}
	if pr.Name() != "INFER_ONLY/profiled" {
		t.Fatalf("Name = %s", pr.Name())
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"camera": Camera, "CAMERA": Camera, "archive": Archive,
		"ongoing": Ongoing, "infer": InferOnly, "INFER_ONLY": InferOnly,
		"inferonly": InferOnly,
	}
	for in, want := range cases {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("cloud"); err == nil {
		t.Fatal("unknown scenario must error")
	}
}
