package vdb

import (
	"fmt"
	"sort"
	"strings"

	"tahoma/internal/cascade"
	"tahoma/internal/core"
)

// contentStep is one planned content-predicate evaluation.
type contentStep struct {
	cond     ContentCond
	pred     *Predicate
	spec     cascade.Spec
	expected cascade.Result // evaluator's estimate for the chosen cascade
}

// queryPlan is the executable form of a query: metadata filters first (in
// selectivity-free textual order — the corpus is in memory, so ordering
// within the metadata set is immaterial), then content predicates, cheapest
// expected cascade first, each only over surviving rows.
type queryPlan struct {
	query   *Query
	content []contentStep
}

func (db *DB) plan(q *Query, constraints core.Constraints) (*queryPlan, error) {
	if q.Table != "images" {
		return nil, fmt.Errorf("vdb: unknown table %q (only 'images')", q.Table)
	}
	for _, c := range q.Columns {
		if _, err := metaValue(Metadata{}, c); err != nil {
			return nil, err
		}
	}
	for _, mc := range q.Meta {
		if _, err := metaValue(Metadata{}, mc.Column); err != nil {
			return nil, err
		}
	}
	plan := &queryPlan{query: q}
	for _, cc := range q.Content {
		pred, ok := db.predicates[cc.Category]
		if !ok {
			return nil, fmt.Errorf("vdb: no classifier installed for category %q (installed: %s)",
				cc.Category, strings.Join(db.Predicates(), ", "))
		}
		point, err := core.Select(pred.Frontier, constraints)
		if err != nil {
			return nil, fmt.Errorf("vdb: selecting cascade for %q: %w", cc.Category, err)
		}
		res := pred.Results[point.Index]
		plan.content = append(plan.content, contentStep{cond: cc, pred: pred, spec: res.Spec, expected: res})
	}
	// Cheapest content predicate first: fewer expensive calls downstream.
	sort.SliceStable(plan.content, func(i, j int) bool {
		return plan.content[i].expected.AvgCost < plan.content[j].expected.AvgCost
	})
	return plan, nil
}

func (p *queryPlan) describe(db *DB) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scan images (%d rows)\n", db.Count())
	for _, mc := range p.query.Meta {
		fmt.Fprintf(&b, "  Filter: %s %s %s\n", mc.Column, mc.Op, mc.Val)
	}
	for _, cs := range p.content {
		neg := ""
		if cs.cond.Negated {
			neg = "NOT "
		}
		fmt.Fprintf(&b, "  UDF: %scontains_object(%s) via cascade [%s]\n", neg, cs.cond.Category,
			cs.spec.Describe(cs.pred.System.Models))
		fmt.Fprintf(&b, "       est. accuracy %.3f, est. throughput %.0f imgs/sec (%s)\n",
			cs.expected.Accuracy, cs.expected.Throughput, db.costModel.Name())
		if col, ok := cs.pred.materialized[cs.spec.ID()]; ok {
			if n := col.coverage(); n == db.Count() {
				b.WriteString("       (materialized: no inference needed)\n")
			} else if n > 0 {
				fmt.Fprintf(&b, "       (partially materialized: %d/%d rows cached)\n", n, db.Count())
			}
		}
	}
	if p.query.Limit > 0 {
		fmt.Fprintf(&b, "  Limit %d\n", p.query.Limit)
	}
	switch {
	case p.query.CountStar:
		b.WriteString("  Project COUNT(*)\n")
	case p.query.Star:
		fmt.Fprintf(&b, "  Project %s\n", strings.Join(metaColumns, ", "))
	default:
		fmt.Fprintf(&b, "  Project %s\n", strings.Join(p.query.Columns, ", "))
	}
	return b.String()
}

func (db *DB) execute(plan *queryPlan) (*Result, error) {
	q := plan.query
	// 1. Metadata filters over all rows.
	var live []int
	for i, m := range db.meta {
		keep := true
		for _, mc := range q.Meta {
			v, err := metaValue(m, mc.Column)
			if err != nil {
				return nil, err
			}
			ok, err := compare(v, mc.Op, mc.Val)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			live = append(live, i)
		}
	}

	// 2. Content predicates on survivors, evaluated as batched columns
	// through the execution engine. The materialized column carries
	// per-row validity (the paper's partially-materialized UDF output):
	// rows classified under a metadata filter are cached too, so a later
	// broader query only pays for the rows it has not yet seen.
	udfCalls := 0
	for _, cs := range plan.content {
		key := cs.spec.ID()
		col := cs.pred.materialized[key]
		if col == nil {
			col = &column{}
			cs.pred.materialized[key] = col
		}
		col.grow(db.corpus.Len())
		if missing := col.missing(live); len(missing) > 0 {
			rt, err := cascade.NewRuntime(cs.spec, cs.pred.System.Models, cs.pred.System.Thresholds)
			if err != nil {
				return nil, err
			}
			eng, err := rt.Engine()
			if err != nil {
				return nil, err
			}
			rep, err := eng.Run(db.corpus, missing, db.execOpts)
			if err != nil {
				return nil, fmt.Errorf("vdb: classifying %q: %w", cs.cond.Category, err)
			}
			for j, idx := range missing {
				col.labels[idx] = rep.Labels[j]
				col.valid[idx] = true
			}
			udfCalls += rep.Frames
		}
		var next []int
		for _, idx := range live {
			if col.labels[idx] != cs.cond.Negated {
				next = append(next, idx)
			}
		}
		live = next
	}

	// 3. Limit + projection.
	if q.Limit > 0 && len(live) > q.Limit {
		live = live[:q.Limit]
	}
	res := &Result{Count: len(live), UDFCalls: udfCalls}
	cols := q.Columns
	if q.Star {
		cols = metaColumns
	}
	if q.CountStar {
		res.Columns = []string{"count"}
		res.Rows = [][]Value{{{Int: int64(len(live))}}}
		return res, nil
	}
	res.Columns = cols
	for _, idx := range live {
		row := make([]Value, len(cols))
		for c, col := range cols {
			v, err := metaValue(db.meta[idx], col)
			if err != nil {
				return nil, err
			}
			row[c] = v
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
