package arch

import (
	"testing"

	"tahoma/internal/tensor"
)

func TestGridEnumeration(t *testing.T) {
	specs := Grid([]int{1, 2, 4}, []int{16, 32}, []int{16, 32, 64}, 3)
	// 3 conv-layer options × 2 widths × 3 dense = 18 (no zero-layer rows).
	if len(specs) != 18 {
		t.Fatalf("grid size %d, want 18", len(specs))
	}
	seen := make(map[string]bool)
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", s.ID(), err)
		}
		if seen[s.ID()] {
			t.Fatalf("duplicate spec %s", s.ID())
		}
		seen[s.ID()] = true
	}
}

func TestGridZeroConvCollapsesWidths(t *testing.T) {
	specs := Grid([]int{0}, []int{16, 32}, []int{8}, 3)
	if len(specs) != 1 {
		t.Fatalf("zero-conv grid should dedupe conv widths, got %d", len(specs))
	}
	if specs[0].ConvWidth != 0 {
		t.Fatal("zero-conv spec should zero the conv width")
	}
}

func TestMinInputSize(t *testing.T) {
	for _, tc := range []struct{ layers, want int }{{0, 2}, {1, 4}, {2, 8}, {3, 16}} {
		s := Spec{ConvLayers: tc.layers, ConvWidth: 4, DenseWidth: 4, Kernel: 3}
		if got := s.MinInputSize(); got != tc.want {
			t.Fatalf("MinInputSize(%d layers) = %d, want %d", tc.layers, got, tc.want)
		}
	}
}

func TestBuildShapes(t *testing.T) {
	s := Spec{ConvLayers: 2, ConvWidth: 4, DenseWidth: 8, Kernel: 3}
	net, err := s.Build(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	// conv(3->4) relu pool conv(4->4) relu pool flatten dense relu dense = 10.
	if len(net.Layers) != 10 {
		t.Fatalf("layer count %d, want 10", len(net.Layers))
	}
	x := tensor.New(3, 16, 16)
	_ = net.Forward(x) // must not panic
}

func TestBuildRejectsTooSmallInput(t *testing.T) {
	s := Spec{ConvLayers: 3, ConvWidth: 4, DenseWidth: 8, Kernel: 3}
	if _, err := s.Build(1, 8); err == nil {
		t.Fatal("expected error: 8px input cannot survive 3 pools")
	}
}

func TestBuildZeroConvIsLogisticStyle(t *testing.T) {
	s := Spec{ConvLayers: 0, DenseWidth: 4, Kernel: 3}
	net, err := s.Build(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// flatten dense relu dense = 4 layers.
	if len(net.Layers) != 4 {
		t.Fatalf("layer count %d, want 4", len(net.Layers))
	}
}

func TestBuildInitDeterministic(t *testing.T) {
	s := Spec{ConvLayers: 1, ConvWidth: 4, DenseWidth: 8, Kernel: 3}
	a, err := s.BuildInit(3, 8, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.BuildInit(3, 8, 77)
	if err != nil {
		t.Fatal(err)
	}
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	c, err := s.BuildInit(3, 8, 78)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i, w := range c.Weights() {
		if w != wa[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Spec{
		{ConvLayers: -1, DenseWidth: 4, Kernel: 3},
		{ConvLayers: 1, ConvWidth: 0, DenseWidth: 4, Kernel: 3},
		{ConvLayers: 1, ConvWidth: 4, DenseWidth: 0, Kernel: 3},
		{ConvLayers: 1, ConvWidth: 4, DenseWidth: 4, Kernel: 2},
		{ConvLayers: 1, ConvWidth: 4, DenseWidth: 4, Kernel: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: %+v should be invalid", i, s)
		}
	}
}

func TestIDStable(t *testing.T) {
	s := Spec{ConvLayers: 2, ConvWidth: 16, DenseWidth: 32, Kernel: 3}
	if s.ID() != "c2w16d32k3" {
		t.Fatalf("ID = %s", s.ID())
	}
}
