// Package train fits TAHOMA's basic models to a labeled training split. The
// grid of models is embarrassingly parallel, so All trains models across a
// worker pool; representations are materialized once per distinct transform
// and shared read-only between the models that consume them, mirroring how
// the paper amortizes preprocessing during system initialization.
package train

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"tahoma/internal/model"
	"tahoma/internal/nn"
	"tahoma/internal/synth"
	"tahoma/internal/tensor"
)

// Options controls the fitting loop.
type Options struct {
	Epochs    int     // full passes over the training split (default 4)
	BatchSize int     // gradient accumulation size (default 16)
	LR        float64 // Adam learning rate (default 0.004)
	Seed      int64   // shuffle seed
}

func (o *Options) setDefaults() {
	if o.Epochs == 0 {
		o.Epochs = 4
	}
	if o.BatchSize == 0 {
		o.BatchSize = 16
	}
	if o.LR == 0 {
		o.LR = 0.004
	}
}

// Report summarizes one model's training run.
type Report struct {
	ModelID       string
	Epochs        int
	FinalLoss     float64 // mean BCE over the last epoch
	TrainAccuracy float64 // 0.5-cutoff accuracy on the training split
}

// sample is a pre-transformed training example.
type sample struct {
	x     *tensor.Tensor
	label float32
}

func materialize(m *model.Model, ds synth.Dataset) []sample {
	out := make([]sample, len(ds.Examples))
	for i, e := range ds.Examples {
		rep := m.Xform.Apply(e.Image)
		var y float32
		if e.Label {
			y = 1
		}
		out[i] = sample{x: model.InputTensor(rep), label: y}
	}
	return out
}

// Model trains a single model in place and returns a report.
func Model(m *model.Model, ds synth.Dataset, opts Options) (Report, error) {
	opts.setDefaults()
	if ds.Len() == 0 {
		return Report{}, fmt.Errorf("train: empty training set for %s", m.ID())
	}
	return fit(m, materialize(m, ds), opts)
}

func fit(m *model.Model, samples []sample, opts Options) (Report, error) {
	opts.setDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	opt := nn.NewAdam(opts.LR)
	params := m.Net.Params()
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		m.Net.ZeroGrad()
		inBatch := 0
		for _, idx := range order {
			s := samples[idx]
			z := m.Net.Forward(s.x)
			loss, dz := nn.BCELossWithLogits(z, s.label)
			epochLoss += float64(loss)
			m.Net.Backward(dz / float32(opts.BatchSize))
			inBatch++
			if inBatch == opts.BatchSize {
				opt.Step(params)
				m.Net.ZeroGrad()
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step(params)
			m.Net.ZeroGrad()
		}
		lastLoss = epochLoss / float64(len(samples))
	}
	correct := 0
	for _, s := range samples {
		p := tensor.Sigmoid(m.Net.Forward(s.x))
		if (p >= 0.5) == (s.label >= 0.5) {
			correct++
		}
	}
	return Report{
		ModelID:       m.ID(),
		Epochs:        opts.Epochs,
		FinalLoss:     lastLoss,
		TrainAccuracy: float64(correct) / float64(len(samples)),
	}, nil
}

// All trains every model over a worker pool. Models sharing a transform
// share materialized representations. workers <= 0 uses GOMAXPROCS. The
// optional progress callback receives (completed, total) after each model.
func All(models []*model.Model, ds synth.Dataset, opts Options, workers int, progress func(done, total int)) ([]Report, error) {
	opts.setDefaults()
	if ds.Len() == 0 {
		return nil, fmt.Errorf("train: empty training set")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Materialize each distinct representation once.
	repCache := make(map[string][]sample)
	for _, m := range models {
		id := m.Xform.ID()
		if _, ok := repCache[id]; !ok {
			repCache[id] = materialize(m, ds)
		}
	}

	reports := make([]Report, len(models))
	errs := make([]error, len(models))
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				m := models[i]
				o := opts
				o.Seed = opts.Seed + int64(i) // distinct shuffles per model
				rep, err := fit(m, repCache[m.Xform.ID()], o)
				reports[i], errs[i] = rep, err
				if progress != nil {
					mu.Lock()
					done++
					progress(done, len(models))
					mu.Unlock()
				}
			}
		}()
	}
	for i := range models {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return reports, fmt.Errorf("train: model %s: %w", models[i].ID(), err)
		}
	}
	return reports, nil
}

// Scores runs a trained model over a dataset and returns its probability
// outputs, materializing the model's representation for each example.
func Scores(m *model.Model, ds synth.Dataset) []float32 {
	out := make([]float32, ds.Len())
	for i, e := range ds.Examples {
		out[i] = m.ScoreFull(e.Image)
	}
	return out
}

// Labels extracts the boolean ground truth of a dataset.
func Labels(ds synth.Dataset) []bool {
	out := make([]bool, ds.Len())
	for i, e := range ds.Examples {
		out[i] = e.Label
	}
	return out
}
