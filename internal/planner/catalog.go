package planner

import (
	"sort"
	"sync"
)

// Catalog is the per-database adaptive selectivity store: one EWMA-smoothed
// observed pass rate per predicate, seeded from install-time estimates and
// updated with the survivor counts every executed query reports. It is the
// feedback half of the planner — every query improves the next plan.
//
// The catalog is safe for concurrent use on its own lock and fits the DB's
// snapshot discipline: planning reads a point-in-time rate under Selectivity,
// execution runs lock-free, and observations fold in afterwards. Interleaved
// queries may plan against slightly stale rates, which affects only cost
// estimates, never results.
type Catalog struct {
	mu    sync.RWMutex
	preds map[string]*predStat
}

type predStat struct {
	seed    float64
	rate    float64
	samples int64 // observed frames folded into rate
}

// observeHalfWeight sets the EWMA's responsiveness: an observation of this
// many frames moves the estimate halfway to the observed batch rate, so a
// single 512-frame query dominates the seed while a 1-frame trigger batch
// barely nudges it. The seed acts as a prior of the same weight — the
// first observation is folded in exactly like every later one, never
// wholesale-replacing the install-time estimate.
const observeHalfWeight = 64

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{preds: make(map[string]*predStat)}
}

// Seed registers a predicate with its install-time selectivity estimate
// (typically the evaluation-set positive rate). Re-seeding an existing key
// updates the seed but keeps accumulated observations.
func (c *Catalog) Seed(key string, seed float64) {
	seed = clamp01(seed)
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.preds[key]
	if !ok {
		c.preds[key] = &predStat{seed: seed, rate: seed}
		return
	}
	st.seed = seed
	if st.samples == 0 {
		st.rate = seed
	}
}

// Observe folds one query's survivor counts for a predicate into the
// estimate: frames classified, of which positives carried the positive
// label. Zero-frame observations are ignored. The update is a
// batch-size-weighted EWMA against whatever the estimate currently is —
// seed included — so a single-frame trigger batch cannot slam a seeded
// rate to 0 or 1.
//
// Observations are whatever the executor saw: in the sequential path a
// later predicate classifies only the survivors of earlier ones, so its
// sample is conditioned on them (fused-path samples cover the union of
// missing rows and are close to marginal). For correlated predicates the
// EWMA therefore mixes conditional and marginal rates; that can cost plan
// quality on such workloads, never correctness — labels are
// order-invariant by construction.
func (c *Catalog) Observe(key string, frames, positives int) {
	if frames <= 0 {
		return
	}
	obs := float64(positives) / float64(frames)
	w := float64(frames) / float64(frames+observeHalfWeight)
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.preds[key]
	if !ok {
		c.preds[key] = &predStat{seed: obs, rate: obs, samples: int64(frames)}
		return
	}
	st.rate += w * (obs - st.rate)
	st.samples += int64(frames)
}

// Selectivity returns the current positive-label rate estimate for key and
// the number of observed frames behind it (0 = still the seed). Unknown keys
// report the fallback seed 0.5.
func (c *Catalog) Selectivity(key string) (rate float64, samples int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st, ok := c.preds[key]
	if !ok {
		return 0.5, 0
	}
	return st.rate, st.samples
}

// Reset drops every accumulated observation back to its seed — the move for
// a corpus swap, where observed rates describe data that is gone.
func (c *Catalog) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.preds {
		st.rate = st.seed
		st.samples = 0
	}
}

// CatalogEntry is one predicate's selectivity state, for observability
// surfaces (GET /stats).
type CatalogEntry struct {
	Key      string
	PassRate float64 // current positive-label rate estimate
	Samples  int64   // observed frames behind it (0 = seeded)
	Seed     float64 // install-time estimate
}

// Restore replaces the catalog's contents with a previously Snapshot-ted
// state — the recovery path: a restarted process resumes planning with the
// selectivity knowledge it had accumulated, not the install-time seeds.
func (c *Catalog) Restore(entries []CatalogEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.preds = make(map[string]*predStat, len(entries))
	for _, e := range entries {
		c.preds[e.Key] = &predStat{seed: clamp01(e.Seed), rate: clamp01(e.PassRate), samples: e.Samples}
	}
}

// Snapshot lists every predicate's state, sorted by key.
func (c *Catalog) Snapshot() []CatalogEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]CatalogEntry, 0, len(c.preds))
	for k, st := range c.preds {
		out = append(out, CatalogEntry{Key: k, PassRate: st.rate, Samples: st.samples, Seed: st.seed})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
