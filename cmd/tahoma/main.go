// Command tahoma is the CLI for the TAHOMA visual-analytics predicate
// optimizer. Subcommands mirror the system's lifecycle:
//
//	tahoma corpus   -category fence -dir ./corpus            generate + ingest a corpus
//	tahoma init     -category fence -zoo ./zoo/fence         train the design space, persist it
//	tahoma frontier -zoo ./zoo/fence -scenario camera        print the Pareto frontier
//	tahoma query    -zoo ./zoo/fence -corpus ./corpus -sql 'SELECT ...'
//	tahoma explain  -zoo ./zoo/fence -corpus ./corpus -sql 'SELECT ...'
//	tahoma serve    -zoo ./zoo/fence -corpus ./corpus -addr 127.0.0.1:8080
//
// serve runs the long-lived concurrent query service: POST /query (SQL in,
// rows out; ?ndjson=1 streams), GET /explain, GET /stats. A bounded
// admission pool (-max-concurrent, -max-queue, -queue-timeout) keeps N
// clients from oversubscribing the execution engine, and -share-reps-mb
// sizes the cross-query representation cache that lets concurrent queries
// reuse each other's transform work. Multiple -zoo directories
// (comma-separated) install one predicate each.
//
// query/explain execution flags: content predicates are ordered by the
// cost-based planner — rank = cost/(1-selectivity) against the adaptive
// selectivity catalog, with representation-cache-aware cost discounts —
// and -order=static restores the cheapest-expected-cascade-first ordering
// as an escape hatch (labels are bit-identical either way). Multi-predicate
// queries fuse their cascades into one shared representation plan when the
// planner's cost comparison favors it (-fused=false for sequential
// predicate-at-a-time execution); -store-corpus queries straight out of the
// representation store through a -cache-mb LRU instead of loading every
// source into memory; -serve-reps additionally loads pre-materialized
// representations from the store, skipping decode + transform for the
// transforms it covers; -prefetch sizes the async ingest ring that overlaps
// decode/transform with inference. Each query prints its classifier
// invocations, representation work (transformed vs served) and the
// rep-cache hit rate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"tahoma/internal/core"
	"tahoma/internal/exec"
	"tahoma/internal/img"
	"tahoma/internal/pareto"
	"tahoma/internal/planner"
	"tahoma/internal/profile"
	"tahoma/internal/repstore"
	"tahoma/internal/scenario"
	"tahoma/internal/synth"
	"tahoma/internal/vdb"
	"tahoma/internal/xform"
	"tahoma/internal/zoo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tahoma: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "corpus":
		err = cmdCorpus(os.Args[2:])
	case "init":
		err = cmdInit(os.Args[2:])
	case "frontier":
		err = cmdFrontier(os.Args[2:])
	case "query", "explain":
		err = cmdQuery(os.Args[1], os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: tahoma <command> [flags]

commands:
  corpus    generate a synthetic labeled corpus and ingest it into a representation store
  init      train the model design space for a predicate and persist the model repository
  frontier  print the Pareto-optimal cascades for a persisted predicate under a scenario
  query     run a SQL query against a corpus using installed predicates
  explain   show the query plan without executing it
  serve     serve concurrent SQL queries over HTTP from one open database

categories: %s
`, strings.Join(synth.CategoryNames(), ", "))
}

func parseScenario(s string) (scenario.Kind, error) {
	return scenario.ParseKind(s)
}

func cmdCorpus(args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	category := fs.String("category", "fence", "target category")
	dir := fs.String("dir", "./corpus", "representation store directory")
	n := fs.Int("n", 120, "corpus size")
	size := fs.Int("size", 64, "source resolution")
	seed := fs.Int64("seed", 1, "content seed")
	fs.Parse(args)

	cat, err := synth.CategoryByName(*category)
	if err != nil {
		return err
	}
	sp, err := synth.GenerateBinary(cat, synth.Options{
		BaseSize: *size, TrainN: *n, ConfigN: 2, EvalN: 2, Seed: *seed,
	})
	if err != nil {
		return err
	}
	transforms := xform.Grid([]int{*size / 8, *size / 4, *size / 2, *size}, xform.AllColors)
	store, err := repstore.Create(*dir, *size, *size, transforms)
	if err != nil {
		return err
	}
	defer store.Close()
	images := make([]*img.Image, 0, sp.Train.Len())
	positives := 0
	for _, e := range sp.Train.Examples {
		images = append(images, e.Image)
		if e.Label {
			positives++
		}
	}
	if err := store.IngestAll(images); err != nil {
		return err
	}
	fmt.Printf("ingested %d images (%d containing %s) into %s with %d representations each\n",
		len(images), positives, *category, *dir, len(transforms))
	return nil
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	category := fs.String("category", "fence", "target category")
	zooDir := fs.String("zoo", "", "output model repository directory (required)")
	size := fs.Int("size", 64, "source resolution")
	trainN := fs.Int("train", 200, "training examples")
	configN := fs.Int("config", 120, "calibration examples")
	evalN := fs.Int("eval", 240, "evaluation examples")
	seed := fs.Int64("seed", 1, "seed")
	quick := fs.Bool("quick", false, "use the reduced design space")
	fs.Parse(args)
	if *zooDir == "" {
		return fmt.Errorf("init: -zoo is required")
	}

	cat, err := synth.CategoryByName(*category)
	if err != nil {
		return err
	}
	sp, err := synth.GenerateBinary(cat, synth.Options{
		BaseSize: *size, TrainN: *trainN, ConfigN: *configN, EvalN: *evalN,
		Seed: *seed, Augment: true,
	})
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	if *quick {
		cfg.Sizes = []int{*size / 4, *size / 2, *size}
		cfg.ConvWidths = []int{4}
	}
	cfg.DeepXform.Size = *size
	log.Printf("training design space for %s (%d train images)...", *category, sp.Train.Len())
	sys, err := core.Initialize("contains_object("+*category+")", sp, cfg)
	if err != nil {
		return err
	}
	if err := zoo.Save(*zooDir, sys.Repo()); err != nil {
		return err
	}
	fmt.Printf("initialized %d models for %s; repository saved to %s\n",
		len(sys.Models), *category, *zooDir)
	return nil
}

func loadSystem(zooDir string) (*core.System, error) {
	repo, err := zoo.Load(zooDir)
	if err != nil {
		return nil, err
	}
	return core.FromRepo(repo, core.DefaultConfig())
}

func cmdFrontier(args []string) error {
	fs := flag.NewFlagSet("frontier", flag.ExitOnError)
	zooDir := fs.String("zoo", "", "model repository directory (required)")
	scen := fs.String("scenario", "camera", "deployment scenario")
	profiled := fs.Bool("profiled", false, "price cascades with costs measured on this machine instead of the analytic model")
	fs.Parse(args)
	if *zooDir == "" {
		return fmt.Errorf("frontier: -zoo is required")
	}
	kind, err := parseScenario(*scen)
	if err != nil {
		return err
	}
	sys, err := loadSystem(*zooDir)
	if err != nil {
		return err
	}
	var cm scenario.CostModel
	if *profiled {
		// Measure real load/transform/infer costs for every model on this
		// machine (the paper's cost profiler), then price with them.
		srcSize := sys.Models[sys.DeepIdx].Xform.Size
		probe := synth.Categories()[0]
		sp, err := synth.GenerateBinary(probe, synth.Options{
			BaseSize: srcSize, TrainN: 8, ConfigN: 2, EvalN: 2, Seed: 1,
		})
		if err != nil {
			return err
		}
		var samples []*img.Image
		for _, e := range sp.Train.Examples {
			samples = append(samples, e.Image)
		}
		log.Printf("profiling %d models on this machine...", len(sys.Models))
		meas, err := profile.Measure(sys.Models, samples, profile.Options{})
		if err != nil {
			return err
		}
		cm = meas.CostModel(kind)
	} else {
		cm, err = scenario.NewAnalytic(kind, scenario.DefaultParams())
		if err != nil {
			return err
		}
	}
	results, err := sys.EvaluateCascades(sys.BuildOptions(2), cm)
	if err != nil {
		return err
	}
	front := pareto.Frontier(core.Points(results))
	fmt.Printf("%s: %d cascades evaluated under %s; %d Pareto-optimal:\n",
		sys.Predicate, len(results), kind, len(front))
	fmt.Printf("%12s %10s  %s\n", "thru (img/s)", "accuracy", "cascade")
	for _, p := range front {
		r := results[p.Index]
		fmt.Printf("%12.0f %10.3f  %s\n", r.Throughput, r.Accuracy, r.Spec.Describe(sys.Models))
	}
	// Show where images decide inside the 5%-accuracy-budget pick.
	if pick, err := pareto.SelectByAccuracyLoss(front, 0.05); err == nil {
		stats, err := sys.Evaluator.Occupancy(results[pick.Index].Spec)
		if err == nil {
			fmt.Printf("\nlevel occupancy of the 5%%-loss pick:\n")
			for i, st := range stats {
				fmt.Printf("  level %d: %s\n", i+1, st)
			}
		}
	}
	return nil
}

func cmdQuery(mode string, args []string) error {
	fs := flag.NewFlagSet(mode, flag.ExitOnError)
	zooDir := fs.String("zoo", "", "model repository directory (required)")
	corpusDir := fs.String("corpus", "", "representation store directory (required)")
	sql := fs.String("sql", "", "SQL query (required)")
	scen := fs.String("scenario", "camera", "deployment scenario")
	loss := fs.Float64("accuracy-loss", 0.05, "permissible accuracy loss (Uacc)")
	workers := fs.Int("workers", 0, "classification worker goroutines (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "frames per execution-engine batch (0 = engine default)")
	fused := fs.Bool("fused", true, "fuse multi-predicate queries into one shared representation-slot plan")
	order := fs.String("order", "rank", "content-predicate ordering: rank (cost/(1-selectivity), adaptive) or static (cheapest expected cascade first)")
	prefetch := fs.Int("prefetch", 0, "async ingest ring depth for fused queries (0 = auto, <0 = synchronous)")
	storeCorpus := fs.Bool("store-corpus", false, "query straight out of the representation store through an LRU cache instead of loading sources into memory")
	cacheMB := fs.Int("cache-mb", 64, "decoded-record LRU cache budget in MiB for -store-corpus")
	serveReps := fs.Bool("serve-reps", false, "load pre-materialized representations from the store (implies -store-corpus); skips decode+transform for covered transforms")
	materialize := fs.String("materialize", "on", "label materialization: on (cache classified labels as bitmap columns), off (re-infer every query), bg (on + background analyzer pre-materializes hot predicates)")
	matMB := fs.Int("mat-mb", 0, "materialized-label byte budget in MiB (0 = unbounded); coldest columns are evicted over budget")
	quantize := fs.String("quantize", "auto", "int8 scoring: auto (quantized kernels on calibrated models, float32 guard-band fallback keeps labels bit-identical) or off (float32 everywhere)")
	fs.Parse(args)
	if *zooDir == "" || *corpusDir == "" || *sql == "" {
		return fmt.Errorf("%s: -zoo, -corpus and -sql are required", mode)
	}
	kind, err := parseScenario(*scen)
	if err != nil {
		return err
	}
	sys, err := loadSystem(*zooDir)
	if err != nil {
		return err
	}
	store, err := repstore.Open(*corpusDir)
	if err != nil {
		return err
	}
	defer store.Close()

	meta := make([]vdb.Metadata, store.Count())
	for i := range meta {
		meta[i] = vdb.Metadata{ID: int64(i), Location: "corpus", Camera: "cam-0", TS: int64(i)}
	}

	cm, err := scenario.NewAnalytic(kind, scenario.DefaultParams())
	if err != nil {
		return err
	}
	ord, err := planner.ParseOrder(*order)
	if err != nil {
		return err
	}
	matMode, err := vdb.ParseMatMode(*materialize)
	if err != nil {
		return err
	}
	quantMode, err := exec.ParseQuantMode(*quantize)
	if err != nil {
		return err
	}
	db := vdb.New(cm)
	db.SetExecOptions(exec.Options{Workers: *workers, Batch: *batch, Prefetch: *prefetch})
	db.SetFusion(*fused)
	db.SetPlanOptions(vdb.PlanOptions{Order: ord})
	db.SetMaterialization(matMode)
	db.SetMatBudget(int64(*matMB) << 20)
	db.SetQuantization(quantMode)
	if *serveReps {
		*storeCorpus = true
	}
	if *storeCorpus {
		if err := db.LoadCorpusFromStore(store, int64(*cacheMB)<<20, meta); err != nil {
			return err
		}
		db.ServeReps(*serveReps)
	} else {
		var images []*img.Image
		if err := store.ScanSource(func(i int, im *img.Image) error {
			images = append(images, im)
			return nil
		}); err != nil {
			return err
		}
		if err := db.LoadCorpus(images, meta); err != nil {
			return err
		}
	}
	// The category is the text inside contains_object(...) — register the
	// loaded system under its own category name.
	category := strings.TrimSuffix(strings.TrimPrefix(sys.Predicate, "contains_object("), ")")
	if err := db.InstallPredicate(category, sys, 2); err != nil {
		return err
	}
	cons := core.Constraints{MaxAccuracyLoss: *loss}
	if mode == "explain" {
		plan, err := db.Explain(*sql, cons)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}
	cacheBefore, hasCache := db.RepCacheStats()
	res, err := db.Query(*sql, cons)
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fusedTag := ""
	if res.Fused {
		fusedTag = " (fused)"
	}
	fmt.Printf("-- %d rows, %d classifier invocations%s\n", res.Count, res.UDFCalls, fusedTag)
	if res.MatHits > 0 {
		bitmapTag := ""
		if res.Bitmap {
			bitmapTag = " (bitmap path, zero inference)"
		}
		fmt.Printf("-- materialized: %d labels served from bitmap columns%s\n", res.MatHits, bitmapTag)
	}
	if res.UDFCalls > 0 {
		fmt.Printf("-- reps: %d transformed, %d served from store\n", res.RepsMaterialized, res.RepHits)
	}
	if res.QuantScored+res.QuantFallbacks > 0 {
		fmt.Printf("-- int8: %d scores trusted, %d guard-band float32 fallbacks\n", res.QuantScored, res.QuantFallbacks)
	}
	cacheStats, showCache := res.RepCache, res.HasRepCache
	if !showCache && hasCache {
		// Without -serve-reps no RepSource reaches the engines, but the
		// store-backed corpus still decodes sources through the LRU cache:
		// report that traffic from the cache's own counters.
		after, _ := db.RepCacheStats()
		cacheStats = exec.CacheStats{
			Hits:          after.Hits - cacheBefore.Hits,
			Misses:        after.Misses - cacheBefore.Misses,
			EvictedBytes:  after.EvictedBytes - cacheBefore.EvictedBytes,
			ResidentBytes: after.ResidentBytes,
		}
		showCache = true
	}
	if showCache {
		total := cacheStats.Hits + cacheStats.Misses
		rate := 0.0
		if total > 0 {
			rate = 100 * float64(cacheStats.Hits) / float64(total)
		}
		fmt.Printf("-- rep cache: %d hits, %d misses (%.0f%% hit rate), %.1f MiB resident\n",
			cacheStats.Hits, cacheStats.Misses, rate, float64(cacheStats.ResidentBytes)/(1<<20))
	}
	return nil
}
