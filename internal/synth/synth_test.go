package synth

import (
	"testing"

	"tahoma/internal/img"
)

func TestCategories(t *testing.T) {
	cats := Categories()
	if len(cats) != 10 {
		t.Fatalf("got %d categories, want 10 (Table II)", len(cats))
	}
	wantNames := []string{"acorn", "amphibian", "cloak", "coho", "fence",
		"ferret", "komondor", "pinwheel", "scorpion", "wallet"}
	for i, c := range cats {
		if c.Name != wantNames[i] {
			t.Fatalf("category %d = %q, want %q", i, c.Name, wantNames[i])
		}
		if c.Kind != "hue" && c.Kind != "texture" && c.Kind != "shape" {
			t.Fatalf("category %s has unknown kind %q", c.Name, c.Kind)
		}
	}
	kinds := map[string]int{}
	for _, c := range cats {
		kinds[c.Kind]++
	}
	if kinds["hue"] == 0 || kinds["texture"] == 0 || kinds["shape"] == 0 {
		t.Fatalf("need all three representation-sensitivity kinds, got %v", kinds)
	}
}

func TestCategoryByName(t *testing.T) {
	c, err := CategoryByName("fence")
	if err != nil || c.Name != "fence" {
		t.Fatalf("CategoryByName: %v %v", c, err)
	}
	if _, err := CategoryByName("zebra"); err == nil {
		t.Fatal("unknown category must error")
	}
	if len(CategoryNames()) != 10 {
		t.Fatal("CategoryNames wrong length")
	}
}

func TestGenerateBinaryShape(t *testing.T) {
	cat, _ := CategoryByName("coho")
	sp, err := GenerateBinary(cat, Options{BaseSize: 32, TrainN: 20, ConfigN: 10, EvalN: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Train.Len() != 20 || sp.Config.Len() != 10 || sp.Eval.Len() != 16 {
		t.Fatalf("split sizes: %d/%d/%d", sp.Train.Len(), sp.Config.Len(), sp.Eval.Len())
	}
	// Balanced labels.
	if sp.Train.Positives() != 10 || sp.Eval.Positives() != 8 {
		t.Fatalf("positives: train=%d eval=%d", sp.Train.Positives(), sp.Eval.Positives())
	}
	for _, e := range sp.Train.Examples {
		if e.Image.W != 32 || e.Image.H != 32 || e.Image.Mode != img.RGB {
			t.Fatalf("image geometry %dx%d/%v", e.Image.W, e.Image.H, e.Image.Mode)
		}
		for _, p := range e.Image.Pix {
			if p < 0 || p > 1 {
				t.Fatal("pixel out of range")
			}
		}
	}
}

func TestGenerateBinaryDeterministic(t *testing.T) {
	cat, _ := CategoryByName("acorn")
	opts := Options{BaseSize: 24, TrainN: 6, ConfigN: 4, EvalN: 4, Seed: 99}
	a, err := GenerateBinary(cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateBinary(cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train.Examples {
		ia, ib := a.Train.Examples[i].Image, b.Train.Examples[i].Image
		for j := range ia.Pix {
			if ia.Pix[j] != ib.Pix[j] {
				t.Fatalf("same seed produced different images at example %d pixel %d", i, j)
			}
		}
	}
	c, err := GenerateBinary(cat, Options{BaseSize: 24, TrainN: 6, ConfigN: 4, EvalN: 4, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j, p := range c.Train.Examples[0].Image.Pix {
		if p != a.Train.Examples[0].Image.Pix[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical first image")
	}
}

func TestGenerateBinaryAugment(t *testing.T) {
	cat, _ := CategoryByName("wallet")
	sp, err := GenerateBinary(cat, Options{BaseSize: 16, TrainN: 8, ConfigN: 4, EvalN: 4, Seed: 5, Augment: true})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Train.Len() != 16 {
		t.Fatalf("augmented train size %d, want 16", sp.Train.Len())
	}
	// The second half must be flips of the first half with the same labels.
	for i := 0; i < 8; i++ {
		orig := sp.Train.Examples[i]
		flip := sp.Train.Examples[8+i]
		if orig.Label != flip.Label {
			t.Fatal("augmented label mismatch")
		}
		back := img.FlipH(flip.Image)
		for j := range orig.Image.Pix {
			if back.Pix[j] != orig.Image.Pix[j] {
				t.Fatal("augmented image is not a horizontal flip")
			}
		}
	}
}

func TestGenerateBinaryErrors(t *testing.T) {
	cat, _ := CategoryByName("fence")
	if _, err := GenerateBinary(cat, Options{TrainN: 0, ConfigN: 4, EvalN: 4}); err == nil {
		t.Fatal("zero split must error")
	}
}

// TestPositiveNegativeDiffer: images with the target present should differ
// substantially from the background-only pixels — a sanity check that the
// renderer actually paints objects.
func TestPositiveNegativeDiffer(t *testing.T) {
	cat, _ := CategoryByName("pinwheel")
	sp, err := GenerateBinary(cat, Options{BaseSize: 32, TrainN: 40, ConfigN: 4, EvalN: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Mean absolute difference between a positive and the most similar
	// negative must exceed noise floor for at least some pairs.
	var maxDiff float64
	for _, p := range sp.Train.Examples {
		if !p.Label {
			continue
		}
		for _, n := range sp.Train.Examples {
			if n.Label {
				continue
			}
			var d float64
			for j := range p.Image.Pix {
				diff := float64(p.Image.Pix[j] - n.Image.Pix[j])
				if diff < 0 {
					diff = -diff
				}
				d += diff
			}
			d /= float64(len(p.Image.Pix))
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff < 0.02 {
		t.Fatalf("positives indistinguishable from negatives (max mean diff %v)", maxDiff)
	}
}

func TestGenerateStream(t *testing.T) {
	opts := ReefStream(32, 60, 7)
	frames, err := GenerateStream(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 60 {
		t.Fatalf("got %d frames", len(frames))
	}
	for _, f := range frames {
		if f.Image.W != 32 || f.Image.Mode != img.RGB {
			t.Fatal("frame geometry wrong")
		}
	}
}

func TestStreamTemporalCoherence(t *testing.T) {
	// Reef frames must be much more self-similar than junction frames.
	meanDiff := func(opts StreamOptions) float64 {
		frames, err := GenerateStream(opts)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for i := 1; i < len(frames); i++ {
			var d float64
			a, b := frames[i-1].Image, frames[i].Image
			for j := range a.Pix {
				diff := float64(a.Pix[j] - b.Pix[j])
				d += diff * diff
			}
			total += d / float64(len(a.Pix))
		}
		return total / float64(len(frames)-1)
	}
	reef := meanDiff(ReefStream(32, 40, 11))
	junction := meanDiff(JunctionStream(32, 40, 11))
	if reef >= junction {
		t.Fatalf("reef (%v) must be calmer than junction (%v)", reef, junction)
	}
}

func TestStreamLabels(t *testing.T) {
	// With a high enter probability the target must appear at least once,
	// and labels must change over a long stream.
	opts := JunctionStream(24, 300, 13)
	frames, err := GenerateStream(opts)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, f := range frames {
		if f.Label {
			pos++
		}
	}
	if pos == 0 || pos == len(frames) {
		t.Fatalf("degenerate label distribution: %d/%d positive", pos, len(frames))
	}
}

func TestStreamErrors(t *testing.T) {
	if _, err := GenerateStream(StreamOptions{Size: 4, Frames: 10}); err == nil {
		t.Fatal("tiny size must error")
	}
	if _, err := GenerateStream(StreamOptions{Size: 32, Frames: 0}); err == nil {
		t.Fatal("zero frames must error")
	}
}
