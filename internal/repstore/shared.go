package repstore

import (
	"fmt"
	"sync"

	"tahoma/internal/img"
)

// SharedReps is a bounded in-memory LRU of materialized physical
// representations, keyed by (transform identity, source frame index). Unlike
// Cache it is not backed by a store: the execution engines publish the
// representations they transform and later runs — typically other queries
// running concurrently against the same corpus — read them back, so a
// representation materialized for query A is a hit for query B. Published
// images are bit-identical copies of the transform output (not quantized
// records), so serving from SharedReps never changes labels. Safe for
// concurrent use.
//
// Size the budget to the corpus's representation working set: when it does
// not fit, the LRU churns (every query pays the publish copy and evicts
// someone else's entry for near-zero hit rate). A steadily growing
// EvictedBytes against a low hit rate is the signal to raise the budget or
// disable sharing.
type SharedReps struct {
	mu  sync.Mutex
	lru *lruCore
}

// NewSharedReps builds a shared representation cache holding up to
// capacityBytes of decoded pixel data.
func NewSharedReps(capacityBytes int64) (*SharedReps, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("repstore: shared rep cache capacity must be positive, got %d", capacityBytes)
	}
	return &SharedReps{lru: newLRUCore(capacityBytes)}, nil
}

// GetRep returns the cached representation of source frame i under transform
// id, or nil. The returned image is shared across callers and must never be
// written (the exec engines uphold this: cached images stay out of their
// pooled ApplyInto buffers).
func (s *SharedReps) GetRep(i int, id string) *img.Image {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.lookup(cacheKey{rep: id, idx: i})
}

// PutRep publishes a representation. The image becomes cache-owned and must
// not alias any buffer the caller will write again; concurrent publishes of
// the same key keep the first copy (the pixels are identical either way —
// transforms are deterministic).
func (s *SharedReps) PutRep(i int, id string, im *img.Image) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lru.insert(cacheKey{rep: id, idx: i}, im)
}

// Contains reports whether the representation of source frame i under
// transform id is resident, without promoting it in the LRU or counting a
// hit or miss — the query planner's residency probe.
func (s *SharedReps) Contains(i int, id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.contains(cacheKey{rep: id, idx: i})
}

// Stats reports cache effectiveness. Hits/Misses count GetRep outcomes;
// EvictedBytes is cumulative, ResidentBytes the current footprint.
func (s *SharedReps) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.stats()
}

// Bytes reports the resident footprint — the uniform accessor every label
// or representation cache exposes (Cache and matstore.Store match).
func (s *SharedReps) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.bytes
}

// Evicted reports cumulative bytes pushed out by the LRU policy — the
// uniform accessor paired with Bytes.
func (s *SharedReps) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.evicted
}

// Len returns the number of cached representations.
func (s *SharedReps) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.list.Len()
}
